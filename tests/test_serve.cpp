// Tests for the multi-tenant serving engine (src/serve) and its decode
// primitives (src/nn/decode.*): bitwise equality of batched and serial
// decoding at several batch widths, radix prefix-cache hit/miss/split/
// eviction semantics, scheduler admission + round-robin fairness under
// churn, and cross-thread submit/wait safety.
//
// Suite names (BatchedDecode, RadixCache, ServeScheduler,
// ServeConcurrency) are stable so sanitizer CI can select them with
// ctest -R.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <span>
#include <thread>
#include <vector>

#include "nn/decode.hpp"
#include "nn/infer.hpp"
#include "serve/radix_cache.hpp"
#include "serve/server.hpp"
#include "text/tokenizer.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {
namespace {

/// Same shape test_infer.cpp uses: SIMD-exercising but tiny.
ModelConfig serve_config() {
  ModelConfig config;
  config.name = "serve-test";
  config.vocab_size = 50;
  config.d_model = 32;
  config.n_layers = 2;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 48;
  config.max_seq_len = 64;
  config.validate();
  return config;
}

/// Tokenizer-vocab shape for Server tests (prompts are real text).
ModelConfig text_config() {
  ModelConfig config;
  config.name = "serve-text";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 16;
  config.n_layers = 1;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 24;
  config.max_seq_len = 256;
  config.validate();
  return config;
}

std::vector<TokenId> ramp_tokens(std::size_t n, std::int64_t vocab,
                                 std::size_t stride) {
  std::vector<TokenId> tokens(n);
  for (std::size_t i = 0; i < n; ++i) {
    tokens[i] = static_cast<TokenId>((i * stride + 1) %
                                     static_cast<std::size_t>(vocab));
  }
  return tokens;
}

bool rows_equal(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Serially decodes `tokens` through one session, returning the logits
/// after every step.
std::vector<std::vector<float>> serial_logits(
    const TransformerModel& model, const std::vector<TokenId>& tokens) {
  const auto& config = model.config();
  SessionState state(config, config.max_seq_len);
  DecodeScratch scratch(config, 1);
  std::vector<float> logits(static_cast<std::size_t>(config.vocab_size));
  std::vector<std::vector<float>> rows;
  for (const TokenId token : tokens) {
    decode_step(model, state, scratch, token,
                std::span<float>(logits.data(), logits.size()));
    rows.push_back(logits);
  }
  return rows;
}

/// Runs `width` sessions through batched_decode_step for every step of
/// their token sequences and checks each logits row bitwise against the
/// serial reference.
void check_batched_matches_serial(std::int64_t width, ThreadPool* pool) {
  Rng rng(33);
  const TransformerModel model(serve_config(), rng);
  const auto& config = model.config();
  const std::size_t steps = 9;

  std::vector<std::vector<TokenId>> sequences;
  std::vector<std::vector<std::vector<float>>> expected;
  for (std::int64_t b = 0; b < width; ++b) {
    sequences.push_back(ramp_tokens(steps, config.vocab_size,
                                    static_cast<std::size_t>(3 + 2 * b)));
    expected.push_back(serial_logits(model, sequences.back()));
  }

  std::vector<std::unique_ptr<SessionState>> states;
  std::vector<SessionState*> state_ptrs;
  for (std::int64_t b = 0; b < width; ++b) {
    states.push_back(
        std::make_unique<SessionState>(config, config.max_seq_len));
    state_ptrs.push_back(states.back().get());
  }
  DecodeScratch scratch(config, width);
  std::vector<float> logits(
      static_cast<std::size_t>(width * config.vocab_size));
  for (std::size_t t = 0; t < steps; ++t) {
    std::vector<TokenId> tokens;
    for (std::int64_t b = 0; b < width; ++b) {
      tokens.push_back(sequences[static_cast<std::size_t>(b)][t]);
    }
    batched_decode_step(
        model,
        std::span<SessionState* const>(state_ptrs.data(), state_ptrs.size()),
        std::span<const TokenId>(tokens.data(), tokens.size()), scratch,
        std::span<float>(logits.data(), logits.size()), pool);
    for (std::int64_t b = 0; b < width; ++b) {
      const std::span<const float> row(
          logits.data() + b * config.vocab_size,
          static_cast<std::size_t>(config.vocab_size));
      const auto& want = expected[static_cast<std::size_t>(b)][t];
      ASSERT_TRUE(rows_equal(
          row, std::span<const float>(want.data(), want.size())))
          << "width " << width << " row " << b << " step " << t;
    }
  }
}

// The serving engine's core claim: a batched step is bit-identical to the
// serial decode of each batch member, at every required width.
TEST(BatchedDecode, BitwiseEqualsSerialAtWidth1) {
  check_batched_matches_serial(1, nullptr);
}

TEST(BatchedDecode, BitwiseEqualsSerialAtWidth4) {
  check_batched_matches_serial(4, nullptr);
}

TEST(BatchedDecode, BitwiseEqualsSerialAtWidth16) {
  check_batched_matches_serial(16, nullptr);
}

// Fanning per-session attention over a pool must not change any bits.
TEST(BatchedDecode, PoolFanoutKeepsBitsAtWidth8) {
  ThreadPool pool(4);
  check_batched_matches_serial(8, &pool);
}

// Continuous batching mixes sessions at unequal positions (one mid-decode,
// one fresh); the batched step must still match each serial stream.
TEST(BatchedDecode, MixedPositionsMatchSerial) {
  Rng rng(5);
  const TransformerModel model(serve_config(), rng);
  const auto& config = model.config();
  const auto head = ramp_tokens(6, config.vocab_size, 3);
  const auto tail = ramp_tokens(4, config.vocab_size, 5);
  const auto fresh = ramp_tokens(4, config.vocab_size, 11);

  // Serial references: one session over head+tail, one over fresh.
  std::vector<TokenId> joined = head;
  joined.insert(joined.end(), tail.begin(), tail.end());
  const auto expect_a = serial_logits(model, joined);
  const auto expect_b = serial_logits(model, fresh);

  SessionState state_a(config, config.max_seq_len);
  SessionState state_b(config, config.max_seq_len);
  DecodeScratch scratch(config, 2);
  std::vector<float> logits(static_cast<std::size_t>(config.vocab_size));
  for (const TokenId token : head) {
    decode_step(model, state_a, scratch, token,
                std::span<float>(logits.data(), logits.size()));
  }
  ASSERT_EQ(state_a.position, 6);

  std::vector<float> batch_logits(
      static_cast<std::size_t>(2 * config.vocab_size));
  SessionState* states[] = {&state_a, &state_b};
  for (std::size_t t = 0; t < tail.size(); ++t) {
    const TokenId tokens[] = {tail[t], fresh[t]};
    batched_decode_step(model, states, tokens, scratch,
                        std::span<float>(batch_logits.data(),
                                         batch_logits.size()));
    const std::span<const float> row_a(
        batch_logits.data(), static_cast<std::size_t>(config.vocab_size));
    const std::span<const float> row_b(
        batch_logits.data() + config.vocab_size,
        static_cast<std::size_t>(config.vocab_size));
    const auto& want_a = expect_a[head.size() + t];
    const auto& want_b = expect_b[t];
    EXPECT_TRUE(rows_equal(
        row_a, std::span<const float>(want_a.data(), want_a.size())));
    EXPECT_TRUE(rows_equal(
        row_b, std::span<const float>(want_b.data(), want_b.size())));
  }
}

/// Decodes `tokens` into `state` so the cache has real KV rows to store.
void prefill_state(const TransformerModel& model, SessionState& state,
                   std::span<const TokenId> tokens) {
  DecodeScratch scratch(model.config(), 1);
  std::vector<float> logits(
      static_cast<std::size_t>(model.config().vocab_size));
  for (const TokenId token : tokens) {
    decode_step(model, state, scratch, token,
                std::span<float>(logits.data(), logits.size()));
  }
}

TEST(RadixCache, MissThenExactHitRoundTripsKvBits) {
  Rng rng(7);
  const TransformerModel model(serve_config(), rng);
  const auto& config = model.config();
  RadixKvCache cache(config, 1 << 20);
  const auto prompt = ramp_tokens(10, config.vocab_size, 3);

  SessionState cold(config, config.max_seq_len);
  {
    auto ref = cache.acquire(prompt, cold);
    EXPECT_EQ(ref.matched(), 0);
    EXPECT_EQ(cold.position, 0);
  }
  prefill_state(model, cold, prompt);
  cache.insert(prompt, cold);
  EXPECT_EQ(cache.stats().inserted_tokens, 10);

  SessionState warm(config, config.max_seq_len);
  auto ref = cache.acquire(prompt, warm);
  EXPECT_EQ(ref.matched(), 10);
  EXPECT_EQ(warm.position, 10);
  for (std::int64_t l = 0; l < config.n_layers; ++l) {
    const std::size_t floats =
        static_cast<std::size_t>(10 * cold.kv_dim);
    EXPECT_EQ(std::memcmp(cold.k_at(l, 0), warm.k_at(l, 0),
                          floats * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(cold.v_at(l, 0), warm.v_at(l, 0),
                          floats * sizeof(float)),
              0);
  }
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);  // 0 of 10, then 10 of 10
}

// A cache-hit session continued past the shared prefix must produce the
// same bits as a session that decoded the whole prompt itself.
TEST(RadixCache, PartialHitContinuesBitIdentically) {
  Rng rng(11);
  const TransformerModel model(serve_config(), rng);
  const auto& config = model.config();
  RadixKvCache cache(config, 1 << 20);

  auto shared = ramp_tokens(8, config.vocab_size, 3);
  std::vector<TokenId> first = shared;
  first.push_back(40);
  first.push_back(41);
  std::vector<TokenId> second = shared;
  second.push_back(20);
  second.push_back(21);
  second.push_back(22);

  SessionState donor(config, config.max_seq_len);
  prefill_state(model, donor, first);
  cache.insert(first, donor);

  SessionState warm(config, config.max_seq_len);
  auto ref = cache.acquire(second, warm);
  EXPECT_EQ(ref.matched(), 8);  // shared prefix only

  DecodeScratch scratch(config, 1);
  std::vector<float> warm_logits(
      static_cast<std::size_t>(config.vocab_size));
  for (std::size_t i = static_cast<std::size_t>(ref.matched());
       i < second.size(); ++i) {
    decode_step(model, warm, scratch, second[i],
                std::span<float>(warm_logits.data(), warm_logits.size()));
  }
  const auto expected = serial_logits(model, second).back();
  EXPECT_TRUE(rows_equal(
      std::span<const float>(warm_logits.data(), warm_logits.size()),
      std::span<const float>(expected.data(), expected.size())));
}

TEST(RadixCache, DivergentInsertSplitsSharedEdge) {
  Rng rng(13);
  const TransformerModel model(serve_config(), rng);
  const auto& config = model.config();
  RadixKvCache cache(config, 1 << 22);

  auto shared = ramp_tokens(6, config.vocab_size, 3);
  std::vector<TokenId> first = shared;
  first.push_back(40);
  std::vector<TokenId> second = shared;
  second.push_back(20);

  SessionState a(config, config.max_seq_len);
  prefill_state(model, a, first);
  cache.insert(first, a);
  EXPECT_EQ(cache.stats().nodes, 1);

  SessionState b(config, config.max_seq_len);
  prefill_state(model, b, second);
  cache.insert(second, b);
  // Split: shared prefix node + two divergent tails.
  EXPECT_EQ(cache.stats().nodes, 3);
  // Only the new tail's token is new data; the prefix was deduplicated.
  EXPECT_EQ(cache.stats().inserted_tokens, 8);

  SessionState probe(config, config.max_seq_len);
  auto ref = cache.acquire(second, probe);
  EXPECT_EQ(ref.matched(), 7);
  for (std::int64_t l = 0; l < config.n_layers; ++l) {
    EXPECT_EQ(std::memcmp(b.k_at(l, 0), probe.k_at(l, 0),
                          static_cast<std::size_t>(7 * b.kv_dim) *
                              sizeof(float)),
              0);
  }
}

TEST(RadixCache, LruEvictionRespectsBudgetAndPins) {
  Rng rng(17);
  const TransformerModel model(serve_config(), rng);
  const auto& config = model.config();
  // Budget: KV rows are 2 (k+v) * n_layers(2) * kv_dim(16) * 4B = 256 B
  // per token; 8 tokens per prompt = 2 KiB per entry. Room for ~2 entries.
  RadixKvCache cache(config, 5 * 1024);

  const auto make_prompt = [&](std::size_t stride) {
    return ramp_tokens(8, config.vocab_size, stride);
  };

  SessionState s1(config, config.max_seq_len);
  const auto p1 = make_prompt(3);
  prefill_state(model, s1, p1);
  cache.insert(p1, s1);

  // Pin p1's path, then insert enough distinct prompts to exceed budget.
  SessionState pin_state(config, config.max_seq_len);
  auto pin = cache.acquire(p1, pin_state);
  EXPECT_EQ(pin.matched(), 8);

  for (std::size_t stride : {5U, 7U, 11U, 13U}) {
    SessionState s(config, config.max_seq_len);
    const auto p = make_prompt(stride);
    prefill_state(model, s, p);
    cache.insert(p, s);
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.bytes, 5 * 1024);

  // Pinned entry survived every eviction pass.
  SessionState probe(config, config.max_seq_len);
  auto ref = cache.acquire(p1, probe);
  EXPECT_EQ(ref.matched(), 8);
  ref.release();
  pin.release();

  // Unpinned now: flooding with fresh prompts may evict it.
  for (std::size_t stride : {17U, 19U, 23U}) {
    SessionState s(config, config.max_seq_len);
    const auto p = make_prompt(stride);
    prefill_state(model, s, p);
    cache.insert(p, s);
  }
  EXPECT_LE(cache.stats().bytes, 5 * 1024);
}

TEST(RadixCache, ZeroBudgetDisablesCaching) {
  Rng rng(19);
  const TransformerModel model(serve_config(), rng);
  const auto& config = model.config();
  RadixKvCache cache(config, 0);
  const auto prompt = ramp_tokens(6, config.vocab_size, 3);
  SessionState s(config, config.max_seq_len);
  prefill_state(model, s, prompt);
  cache.insert(prompt, s);
  SessionState probe(config, config.max_seq_len);
  auto ref = cache.acquire(prompt, probe);
  EXPECT_EQ(ref.matched(), 0);
  EXPECT_EQ(cache.stats().nodes, 0);
}

/// Reference output for a served prompt: plain generate() on the same
/// model with the same options.
std::string reference_output(const TransformerModel& model,
                             const std::string& prompt,
                             const GenerateOptions& options,
                             bool stop_at_newline) {
  return generate(model, prompt, options, stop_at_newline);
}

std::vector<std::string> serve_prompts() {
  return {
      "do: answer placement questions\nq: what is wns?\nout: ",
      "do: answer placement questions\nq: what is tns?\nout: ",
      "do: answer placement questions\nq: define congestion\nout: ",
      "do: answer placement questions\nq: explain skew\nout: ",
      "route the clock tree",
      "fix hold violations on the scan chain",
  };
}

// Served outputs must be bitwise the tokens generate() produces — for
// every batch width, with and without the prefix cache, greedy and
// sampled.
TEST(ServeScheduler, OutputsMatchGenerateAcrossWidthsAndCaching) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  const auto prompts = serve_prompts();
  GenerateOptions options;
  options.max_new_tokens = 12;

  std::vector<std::string> expected;
  for (const auto& prompt : prompts) {
    expected.push_back(reference_output(model, prompt, options, false));
  }

  for (const std::int64_t width : {1, 4, 16}) {
    for (const std::size_t cache_bytes : {std::size_t{0}, std::size_t{1}
                                                              << 22}) {
      ServeConfig serve;
      serve.max_batch = width;
      serve.prefix_cache_bytes = cache_bytes;
      Server server(model, serve);
      std::vector<SessionId> ids;
      for (const auto& prompt : prompts) {
        ids.push_back(server.submit(server.text_request(prompt, options)));
      }
      server.run();
      for (std::size_t i = 0; i < prompts.size(); ++i) {
        EXPECT_EQ(server.wait_result(ids[i]).text, expected[i])
            << "width " << width << " cache " << cache_bytes << " prompt "
            << i;
      }
    }
  }
}

TEST(ServeScheduler, SampledOutputsMatchGeneratePerSeed) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  const auto prompts = serve_prompts();

  ServeConfig serve;
  serve.max_batch = 4;
  Server server(model, serve);
  std::vector<SessionId> ids;
  std::vector<std::string> expected;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    GenerateOptions options;
    options.max_new_tokens = 10;
    options.temperature = 0.8;
    options.seed = 100 + i;
    expected.push_back(reference_output(model, prompts[i], options, true));
    ids.push_back(
        server.submit(server.text_request(prompts[i], options, true)));
  }
  server.run();
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(server.wait_result(ids[i]).text, expected[i]) << i;
  }
}

TEST(ServeScheduler, AdmissionQueuesBeyondSessionAndByteLimits) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  const auto prompts = serve_prompts();
  GenerateOptions options;
  options.max_new_tokens = 8;

  {
    ServeConfig serve;
    serve.max_sessions = 2;
    serve.max_batch = 4;
    Server server(model, serve);
    std::vector<SessionId> ids;
    for (const auto& prompt : prompts) {
      ids.push_back(server.submit(server.text_request(prompt, options)));
    }
    server.run();
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, static_cast<std::int64_t>(prompts.size()));
    EXPECT_LE(stats.peak_resident, 2);
    EXPECT_LE(stats.peak_batch, 2);  // batch can never exceed residency
    for (const SessionId id : ids) {
      EXPECT_FALSE(server.wait_result(id).tokens.empty());
    }
  }
  {
    // Byte budget sized for one resident session at a time.
    const auto& config = model.config();
    const auto one = SessionState::kv_bytes_for(
        config, static_cast<std::int64_t>(prompts[0].size()) + 64);
    ServeConfig serve;
    serve.max_kv_bytes = one + one / 2;
    Server server(model, serve);
    std::vector<SessionId> ids;
    for (const auto& prompt : prompts) {
      ids.push_back(server.submit(server.text_request(prompt, options)));
    }
    server.run();
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, static_cast<std::int64_t>(prompts.size()));
    EXPECT_GE(stats.peak_resident, 1);
  }
}

TEST(ServeScheduler, SubmitRejectsUnservableRequests) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  ServeConfig serve;
  serve.max_kv_bytes = 4096;  // tiny budget
  Server server(model, serve);

  Request empty;
  EXPECT_THROW(server.submit(empty), Error);

  Request huge = server.text_request(
      std::string(static_cast<std::size_t>(model.config().max_seq_len), 'a'),
      {});
  EXPECT_THROW(server.submit(std::move(huge)), Error);

  Request bad_token = server.text_request("ok", {});
  bad_token.prompt.push_back(
      static_cast<TokenId>(model.config().vocab_size));
  EXPECT_THROW(server.submit(std::move(bad_token)), Error);

  GenerateOptions no_budget;
  no_budget.max_new_tokens = 0;
  EXPECT_THROW(server.submit(server.text_request("ok", no_budget)), Error);

  // KV footprint larger than the whole server budget: rejected up front
  // rather than queued forever.
  GenerateOptions long_gen;
  long_gen.max_new_tokens = 200;
  EXPECT_THROW(server.submit(server.text_request("ok", long_gen)), Error);
}

// Round-robin fairness under churn: with more sessions than batch slots,
// no session's emissions stall while others run ahead.
TEST(ServeScheduler, RoundRobinInterleavesEmissionsUnderChurn) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  const auto prompts = serve_prompts();  // 6 sessions, width 2
  GenerateOptions options;
  options.max_new_tokens = 8;

  ServeConfig serve;
  serve.max_batch = 2;
  Server server(model, serve);
  std::vector<TokenId> unused;
  std::vector<SessionId> emission_order;
  std::vector<SessionId> ids;
  for (const auto& prompt : prompts) {
    Request request = server.text_request(prompt, options);
    request.on_token = [&](SessionId id, TokenId) {
      emission_order.push_back(id);
    };
    ids.push_back(server.submit(std::move(request)));
  }
  server.run();

  // Every session emitted, and between consecutive emissions of any one
  // session at most one full rotation of the others elapsed.
  std::map<SessionId, std::vector<std::size_t>> positions;
  for (std::size_t i = 0; i < emission_order.size(); ++i) {
    positions[emission_order[i]].push_back(i);
  }
  EXPECT_EQ(positions.size(), prompts.size());
  for (const auto& [id, at] : positions) {
    for (std::size_t i = 1; i < at.size(); ++i) {
      EXPECT_LE(at[i] - at[i - 1], prompts.size() + 1)
          << "session " << id << " starved between emissions";
    }
  }
}

TEST(ServeScheduler, StreamingCallbackSeesExactlyTheResultTokens) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  GenerateOptions options;
  options.max_new_tokens = 10;

  Server server(model, ServeConfig{});
  std::map<SessionId, std::vector<TokenId>> streamed;
  std::vector<SessionId> ids;
  for (const auto& prompt : serve_prompts()) {
    Request request = server.text_request(prompt, options);
    request.on_token = [&](SessionId id, TokenId token) {
      streamed[id].push_back(token);
    };
    ids.push_back(server.submit(std::move(request)));
  }
  server.run();
  for (const SessionId id : ids) {
    EXPECT_EQ(server.wait_result(id).tokens, streamed[id]);
  }
}

// Sessions admitted after a shared-prefix session finished prefill reuse
// its KV: the cache reports per-token hits and results stay bit-exact.
TEST(ServeScheduler, SharedHeadersHitThePrefixCache) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  const std::string header(120, 'h');
  std::vector<std::string> prompts;
  for (int i = 0; i < 6; ++i) {
    prompts.push_back(header + "q" + std::to_string(i));
  }
  GenerateOptions options;
  options.max_new_tokens = 6;

  std::vector<std::string> expected;
  for (const auto& prompt : prompts) {
    expected.push_back(reference_output(model, prompt, options, false));
  }

  ServeConfig serve;
  serve.max_sessions = 2;  // later sessions admit after inserts exist
  serve.max_batch = 2;
  serve.prefix_cache_bytes = std::size_t{1} << 22;
  Server server(model, serve);
  std::vector<SessionId> ids;
  for (const auto& prompt : prompts) {
    ids.push_back(server.submit(server.text_request(prompt, options)));
  }
  server.run();

  std::int64_t cached = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const SessionResult result = server.wait_result(ids[i]);
    EXPECT_EQ(result.text, expected[i]) << i;
    cached += result.cached_tokens;
  }
  EXPECT_GT(cached, 0);
  const auto stats = server.stats();
  EXPECT_GT(stats.cache.hit_rate(), 0.5);
  EXPECT_EQ(stats.cache.hit_tokens, cached);
}

// submit()/wait_result() from many threads while one driver steps: every
// session completes with the exact generate() output. (tsan runs this.)
TEST(ServeConcurrency, ConcurrentSubmittersAndWaitersSeeExactResults) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  const auto prompts = serve_prompts();
  GenerateOptions options;
  options.max_new_tokens = 8;

  std::vector<std::string> expected;
  for (const auto& prompt : prompts) {
    expected.push_back(reference_output(model, prompt, options, false));
  }

  ServeConfig serve;
  serve.max_batch = 4;
  serve.max_sessions = 3;
  Server server(model, serve);

  std::atomic<int> live_submitters{2};
  std::atomic<bool> mismatch{false};
  const auto submitter = [&](std::size_t begin) {
    for (std::size_t i = begin; i < prompts.size(); i += 2) {
      const SessionId id =
          server.submit(server.text_request(prompts[i], options));
      // Waits on the driver thread below; also exercises cross-thread
      // result delivery.
      if (server.wait_result(id).text != expected[i]) mismatch = true;
    }
    --live_submitters;
  };
  std::thread t1(submitter, 0);
  std::thread t2(submitter, 1);
  while (live_submitters.load() > 0) {
    if (!server.step()) std::this_thread::yield();
  }
  t1.join();
  t2.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(server.stats().completed,
            static_cast<std::int64_t>(prompts.size()));
}

}  // namespace
}  // namespace chipalign
