// Cross-method property matrix: every registered merge method must satisfy
// a common set of contracts (shape preservation, finiteness, determinism,
// option validation, same-basin sanity). Parameterized over the registry.

#include <gtest/gtest.h>

#include "merge/registry.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {
namespace {

Checkpoint base_checkpoint() {
  Rng rng(1000);
  Checkpoint ckpt;
  ckpt.config().name = "matrix-base";
  ckpt.put("embed", Tensor::randn({12, 6}, rng, 0.5F));
  ckpt.put("w1", Tensor::randn({6, 6}, rng, 0.5F));
  ckpt.put("norm", Tensor::full({6}, 1.0F));
  return ckpt;
}

Checkpoint finetuned(const Checkpoint& base, std::uint64_t seed) {
  Rng rng(seed);
  Checkpoint out = base;
  for (const std::string& name : base.names()) {
    Tensor delta = Tensor::randn(base.at(name).shape(), rng, 0.05F);
    out.put(name, ops::add(base.at(name), delta));
  }
  return out;
}

double distance(const Checkpoint& a, const Checkpoint& b) {
  double worst = 0.0;
  for (const std::string& name : a.names()) {
    worst = std::max(worst, ops::max_abs_diff(a.at(name), b.at(name)));
  }
  return worst;
}

class MergeMatrix : public ::testing::TestWithParam<std::string> {
 protected:
  Checkpoint base_ = base_checkpoint();
  Checkpoint chip_ = finetuned(base_, 7);
  Checkpoint instruct_ = finetuned(base_, 8);

  Checkpoint merge_with(const MergeOptions& options) {
    const auto merger = create_merger(GetParam());
    return merge_checkpoints(*merger, chip_, instruct_,
                             merger->requires_base() ? &base_ : nullptr,
                             options);
  }
};

TEST_P(MergeMatrix, PreservesNamesAndShapes) {
  const Checkpoint merged = merge_with(MergeOptions{});
  ASSERT_EQ(merged.names(), base_.names());
  for (const std::string& name : base_.names()) {
    EXPECT_TRUE(merged.at(name).same_shape(base_.at(name))) << name;
  }
}

TEST_P(MergeMatrix, ProducesFiniteWeights) {
  for (double lambda : {0.0, 0.3, 0.6, 1.0}) {
    MergeOptions options;
    options.lambda = lambda;
    EXPECT_TRUE(merge_with(options).all_finite()) << "lambda " << lambda;
  }
}

TEST_P(MergeMatrix, DeterministicForIdenticalOptions) {
  MergeOptions options;
  options.seed = 424242;
  const Checkpoint a = merge_with(options);
  const Checkpoint b = merge_with(options);
  EXPECT_EQ(distance(a, b), 0.0);
}

TEST_P(MergeMatrix, StaysNearTheBasinForSmallFinetunes) {
  // Both finetunes are base +- 0.05-scale noise; any sane merge must stay
  // within a small ball of the base model (no blow-ups from rescaling).
  const Checkpoint merged = merge_with(MergeOptions{});
  EXPECT_LT(distance(merged, base_), 1.0);
}

TEST_P(MergeMatrix, RejectsInvalidLambda) {
  MergeOptions options;
  options.lambda = -0.1;
  EXPECT_THROW(merge_with(options), Error);
  options.lambda = 1.1;
  EXPECT_THROW(merge_with(options), Error);
}

TEST_P(MergeMatrix, RejectsInvalidDensity) {
  MergeOptions options;
  options.density = 0.0;
  EXPECT_THROW(merge_with(options), Error);
  options.density = 1.5;
  EXPECT_THROW(merge_with(options), Error);
}

TEST_P(MergeMatrix, IdenticalInputsWithBaseStayPut) {
  // chip == instruct == finetune: every method should return (nearly) that
  // model. Stochastic methods (della/dare) are exactly expectation-
  // preserving only, but with identical inputs drop+rescale keeps the
  // value's expectation and sign election is trivial — allow slack there.
  const auto merger = create_merger(GetParam());
  MergeOptions options;
  const Checkpoint merged = merge_checkpoints(
      *merger, chip_, chip_, merger->requires_base() ? &base_ : nullptr,
      options);
  const bool stochastic = GetParam() == "della" || GetParam() == "dare";
  const bool sparsifying =
      GetParam() == "ties" || GetParam() == "breadcrumbs";
  if (stochastic) {
    // The task vector is preserved in expectation; bound the deviation by
    // the largest rescaled element (|tau|/p ~ 0.25/0.4).
    EXPECT_LT(distance(merged, chip_), 1.0);
  } else if (sparsifying) {
    // TIES trims the smallest 50% of each task vector.
    EXPECT_LT(distance(merged, chip_), 0.2);
  } else {
    EXPECT_LT(distance(merged, chip_), 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MergeMatrix,
                         ::testing::ValuesIn(merger_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace chipalign
