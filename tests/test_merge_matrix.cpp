// Cross-method property matrix: every registered merge method must satisfy
// a common set of contracts (shape preservation, finiteness, determinism,
// option validation, same-basin sanity). Parameterized over the registry.
// Plus: MergeOptions validation corner cases and geometry-summary semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "merge/geometry.hpp"
#include "merge/registry.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {
namespace {

Checkpoint base_checkpoint() {
  Rng rng(1000);
  Checkpoint ckpt;
  ckpt.config().name = "matrix-base";
  ckpt.put("embed", Tensor::randn({12, 6}, rng, 0.5F));
  ckpt.put("w1", Tensor::randn({6, 6}, rng, 0.5F));
  ckpt.put("norm", Tensor::full({6}, 1.0F));
  return ckpt;
}

Checkpoint finetuned(const Checkpoint& base, std::uint64_t seed) {
  Rng rng(seed);
  Checkpoint out = base;
  for (const std::string& name : base.names()) {
    Tensor delta = Tensor::randn(base.at(name).shape(), rng, 0.05F);
    out.put(name, ops::add(base.at(name), delta));
  }
  return out;
}

double distance(const Checkpoint& a, const Checkpoint& b) {
  double worst = 0.0;
  for (const std::string& name : a.names()) {
    worst = std::max(worst, ops::max_abs_diff(a.at(name), b.at(name)));
  }
  return worst;
}

class MergeMatrix : public ::testing::TestWithParam<std::string> {
 protected:
  Checkpoint base_ = base_checkpoint();
  Checkpoint chip_ = finetuned(base_, 7);
  Checkpoint instruct_ = finetuned(base_, 8);

  Checkpoint merge_with(const MergeOptions& options) {
    const auto merger = create_merger(GetParam());
    return merge_checkpoints(*merger, chip_, instruct_,
                             merger->requires_base() ? &base_ : nullptr,
                             options);
  }
};

TEST_P(MergeMatrix, PreservesNamesAndShapes) {
  const Checkpoint merged = merge_with(MergeOptions{});
  ASSERT_EQ(merged.names(), base_.names());
  for (const std::string& name : base_.names()) {
    EXPECT_TRUE(merged.at(name).same_shape(base_.at(name))) << name;
  }
}

TEST_P(MergeMatrix, ProducesFiniteWeights) {
  for (double lambda : {0.0, 0.3, 0.6, 1.0}) {
    MergeOptions options;
    options.lambda = lambda;
    EXPECT_TRUE(merge_with(options).all_finite()) << "lambda " << lambda;
  }
}

TEST_P(MergeMatrix, DeterministicForIdenticalOptions) {
  MergeOptions options;
  options.seed = 424242;
  const Checkpoint a = merge_with(options);
  const Checkpoint b = merge_with(options);
  EXPECT_EQ(distance(a, b), 0.0);
}

TEST_P(MergeMatrix, StaysNearTheBasinForSmallFinetunes) {
  // Both finetunes are base +- 0.05-scale noise; any sane merge must stay
  // within a small ball of the base model (no blow-ups from rescaling).
  const Checkpoint merged = merge_with(MergeOptions{});
  EXPECT_LT(distance(merged, base_), 1.0);
}

TEST_P(MergeMatrix, RejectsInvalidLambda) {
  MergeOptions options;
  options.lambda = -0.1;
  EXPECT_THROW(merge_with(options), Error);
  options.lambda = 1.1;
  EXPECT_THROW(merge_with(options), Error);
}

TEST_P(MergeMatrix, RejectsInvalidDensity) {
  MergeOptions options;
  options.density = 0.0;
  EXPECT_THROW(merge_with(options), Error);
  options.density = 1.5;
  EXPECT_THROW(merge_with(options), Error);
}

TEST_P(MergeMatrix, IdenticalInputsWithBaseStayPut) {
  // chip == instruct == finetune: every method should return (nearly) that
  // model. Stochastic methods (della/dare) are exactly expectation-
  // preserving only, but with identical inputs drop+rescale keeps the
  // value's expectation and sign election is trivial — allow slack there.
  const auto merger = create_merger(GetParam());
  MergeOptions options;
  const Checkpoint merged = merge_checkpoints(
      *merger, chip_, chip_, merger->requires_base() ? &base_ : nullptr,
      options);
  const bool stochastic = GetParam() == "della" || GetParam() == "dare";
  const bool sparsifying =
      GetParam() == "ties" || GetParam() == "breadcrumbs";
  if (stochastic) {
    // The task vector is preserved in expectation; bound the deviation by
    // the largest rescaled element (|tau|/p ~ 0.25/0.4).
    EXPECT_LT(distance(merged, chip_), 1.0);
  } else if (sparsifying) {
    // TIES trims the smallest 50% of each task vector.
    EXPECT_LT(distance(merged, chip_), 0.2);
  } else {
    EXPECT_LT(distance(merged, chip_), 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MergeMatrix,
                         ::testing::ValuesIn(merger_names()),
                         [](const auto& info) { return info.param; });

// -- MergeOptions validation --------------------------------------------------

TEST(MergeOptionsValidation, RejectsOutOfRangeBaseLambda) {
  MergeOptions options;
  options.lambda = 1.5;
  EXPECT_THROW(validate_merge_options(options), Error);
  options.lambda = -0.01;
  EXPECT_THROW(validate_merge_options(options), Error);
  options.lambda = 0.0;
  EXPECT_NO_THROW(validate_merge_options(options));
  options.lambda = 1.0;
  EXPECT_NO_THROW(validate_merge_options(options));
}

TEST(MergeOptionsValidation, RejectsOutOfRangeOverride) {
  MergeOptions options;
  options.lambda_overrides.emplace_back("norm.weight", 2.0);
  EXPECT_THROW(validate_merge_options(options), Error);
}

// Regression: effective_lambda used to range-check only overrides, so an
// out-of-range base lambda sailed straight into the interpolation math for
// any tensor without an override match.
TEST(MergeOptionsValidation, EffectiveLambdaChecksBaseLambdaToo) {
  MergeOptions options;
  options.lambda = 1.5;
  options.lambda_overrides.emplace_back("special.weight", 0.5);
  EXPECT_EQ(effective_lambda(options, "prefix.special.weight"), 0.5);
  EXPECT_THROW(effective_lambda(options, "other.weight"), Error);
}

// -- geometry summary semantics ----------------------------------------------

// Regression: with no base checkpoint, tv_cosine used to default to 0 and
// still be folded into the mean, making a no-base run look like measured
// orthogonal task vectors. It must now be flagged absent and the mean NaN.
TEST(GeometrySummary, TvCosineIsNanWithoutBase) {
  Checkpoint a;
  a.put("w", Tensor({2}, {1, 0}));
  Checkpoint b;
  b.put("w", Tensor({2}, {0, 1}));
  const auto report = analyze_geometry(a, b, nullptr, 0.5);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_FALSE(report[0].has_tv_cosine);
  const GeometrySummary summary = summarize_geometry(report);
  EXPECT_TRUE(std::isnan(summary.mean_tv_cosine));
  EXPECT_FALSE(std::isnan(summary.mean_theta));
}

TEST(GeometrySummary, TvCosineIsMeasuredWithBase) {
  Checkpoint base;
  base.put("w", Tensor({2}, {1, 1}));
  Checkpoint a;
  a.put("w", Tensor({2}, {2, 1}));
  Checkpoint b;
  b.put("w", Tensor({2}, {1, 2}));
  const auto report = analyze_geometry(a, b, &base, 0.5);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_TRUE(report[0].has_tv_cosine);
  const GeometrySummary summary = summarize_geometry(report);
  EXPECT_FALSE(std::isnan(summary.mean_tv_cosine));
  EXPECT_NEAR(summary.mean_tv_cosine, 0.0, 1e-6);
}

// Regression: zero-norm tensors produce no SLERP/LERP gap, but their
// defaulted 0.0 used to be averaged in, diluting the mean. The mean must
// run only over tensors that measured a gap.
TEST(GeometrySummary, GapAveragesOnlyTensorsThatProducedOne) {
  Checkpoint a;
  a.put("w", Tensor({2}, {1, 0}));   // 90 degrees vs b -> big gap
  a.put("z", Tensor({2}, {0, 0}));   // zero norm -> no gap measurable
  Checkpoint b;
  b.put("w", Tensor({2}, {0, 1}));
  b.put("z", Tensor({2}, {1, 1}));
  const auto report = analyze_geometry(a, b, nullptr, 0.5);
  ASSERT_EQ(report.size(), 2u);
  double gap_of_w = 0.0;
  for (const TensorGeometry& g : report) {
    if (g.name == "w") {
      EXPECT_TRUE(g.has_slerp_lerp_gap);
      gap_of_w = g.slerp_lerp_gap;
    } else {
      EXPECT_FALSE(g.has_slerp_lerp_gap);
    }
  }
  const GeometrySummary summary = summarize_geometry(report);
  // Mean over the single contributing tensor, not diluted by the zero tensor.
  EXPECT_DOUBLE_EQ(summary.mean_slerp_lerp_gap, gap_of_w);
  EXPECT_GT(summary.mean_slerp_lerp_gap, 0.1);
}

TEST(GeometrySummary, AllZeroTensorsYieldNanGapMean) {
  Checkpoint a;
  a.put("z", Tensor({2}, {0, 0}));
  Checkpoint b;
  b.put("z", Tensor({2}, {0, 0}));
  const auto report = analyze_geometry(a, b, nullptr, 0.5);
  const GeometrySummary summary = summarize_geometry(report);
  EXPECT_TRUE(std::isnan(summary.mean_slerp_lerp_gap));
}

}  // namespace
}  // namespace chipalign
