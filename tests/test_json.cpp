// Tests for the minimal JSON parser/writer.

#include <gtest/gtest.h>

#include "io/json.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace chipalign {
namespace {

/// Random JSON document generator for round-trip property tests.
Json random_json(Rng& rng, int depth) {
  const std::uint64_t kind = rng.uniform_index(depth > 0 ? 6 : 4);
  switch (kind) {
    case 0:
      return Json(nullptr);
    case 1:
      return Json(rng.bernoulli(0.5));
    case 2:
      return Json(static_cast<std::int64_t>(rng.uniform_index(1000000)) -
                  500000);
    case 3: {
      std::string s;
      const std::uint64_t len = rng.uniform_index(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        s += static_cast<char>(0x20 + rng.uniform_index(0x5F));
      }
      return Json(s);
    }
    case 4: {
      Json arr = Json::array();
      const std::uint64_t len = rng.uniform_index(4);
      for (std::uint64_t i = 0; i < len; ++i) {
        arr.push_back(random_json(rng, depth - 1));
      }
      return arr;
    }
    default: {
      Json obj = Json::object();
      const std::uint64_t len = rng.uniform_index(4);
      for (std::uint64_t i = 0; i < len; ++i) {
        obj.set("k" + std::to_string(i), random_json(rng, depth - 1));
      }
      return obj;
    }
  }
}

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(Json(static_cast<std::int64_t>(1234567890123LL)).dump(),
            "1234567890123");
  EXPECT_EQ(Json(0).dump(), "0");
}

TEST(Json, DoublesSurviveRoundTrip) {
  const Json parsed = Json::parse(Json(3.25).dump());
  EXPECT_DOUBLE_EQ(parsed.as_double(), 3.25);
  const Json pi = Json::parse("3.141592653589793");
  EXPECT_NEAR(pi.as_double(), 3.141592653589793, 1e-15);
}

TEST(Json, StringEscapes) {
  const std::string raw = "a\"b\\c\nd\te";
  const Json j(raw);
  EXPECT_EQ(Json::parse(j.dump()).as_string(), raw);
}

TEST(Json, UnicodeEscapeDecoding) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xC3\xA9");  // e-acute
}

TEST(Json, ArrayAccess) {
  const Json arr = Json::parse("[1, 2, [3]]");
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.at(1).as_int(), 2);
  EXPECT_EQ(arr.at(2).at(0).as_int(), 3);
  EXPECT_THROW(arr.at(3), Error);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj.set("zeta", Json(1));
  obj.set("alpha", Json(2));
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":2}");
  const Json parsed = Json::parse(obj.dump());
  EXPECT_EQ(parsed.members()[0].first, "zeta");
}

TEST(Json, ObjectSetOverwrites) {
  Json obj = Json::object();
  obj.set("k", Json(1));
  obj.set("k", Json(2));
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.at("k").as_int(), 2);
  EXPECT_FALSE(obj.contains("missing"));
  EXPECT_THROW(obj.at("missing"), Error);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1} extra"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), Error);  // duplicate key
}

TEST(Json, AsIntRejectsNonIntegral) {
  EXPECT_THROW(Json(1.5).as_int(), Error);
  EXPECT_EQ(Json(7.0).as_int(), 7);
}

TEST(Json, TypePredicates) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("{}").is_object());
  EXPECT_TRUE(Json::parse("[]").is_array());
  EXPECT_TRUE(Json::parse("1").is_number());
  EXPECT_TRUE(Json::parse("\"\"").is_string());
  EXPECT_TRUE(Json::parse("true").is_bool());
}

/// Property: dump(parse(dump(x))) == dump(x) for arbitrary documents.
class JsonRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonRoundTrip, DumpParseDumpIsFixedPoint) {
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const Json doc = random_json(rng, 3);
    const std::string once = doc.dump();
    const std::string twice = Json::parse(once).dump();
    EXPECT_EQ(once, twice);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Json, NestedDocumentRoundTrip) {
  const std::string doc =
      R"({"model":{"layers":[{"w":[1,2]},{"w":[3,4]}],"eps":1e-05},"ok":true})";
  const Json parsed = Json::parse(doc);
  EXPECT_EQ(parsed.at("model").at("layers").size(), 2u);
  EXPECT_NEAR(parsed.at("model").at("eps").as_double(), 1e-5, 1e-20);
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(Json::parse(parsed.dump()).dump(), parsed.dump());
}

}  // namespace
}  // namespace chipalign
