// Tests for the safetensors reader/writer.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "io/safetensors.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace chipalign {
namespace {

class SafetensorsTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "ca_st_tests";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
};

TEST_F(SafetensorsTest, F32RoundTripIsExact) {
  Rng rng(1);
  std::map<std::string, Tensor> tensors;
  tensors["a"] = Tensor::randn({3, 4}, rng);
  tensors["b.weight"] = Tensor::randn({7}, rng);
  const std::string file = path("f32.safetensors");
  save_safetensors(file, tensors, DType::kF32);

  const SafetensorsFile loaded = load_safetensors(file);
  ASSERT_EQ(loaded.tensors.size(), 2u);
  for (const auto& [name, tensor] : tensors) {
    const Tensor& back = loaded.tensors.at(name);
    ASSERT_TRUE(back.same_shape(tensor));
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      EXPECT_EQ(back[i], tensor[i]) << name << "[" << i << "]";
    }
  }
}

TEST_F(SafetensorsTest, MetadataRoundTrips) {
  std::map<std::string, Tensor> tensors;
  tensors["w"] = Tensor({2}, {1.0F, 2.0F});
  const std::string file = path("meta.safetensors");
  save_safetensors(file, tensors, DType::kF32,
                   {{"format", "test"}, {"lambda", "0.6"}});
  const SafetensorsFile loaded = load_safetensors(file);
  EXPECT_EQ(loaded.metadata.at("format"), "test");
  EXPECT_EQ(loaded.metadata.at("lambda"), "0.6");
}

TEST_F(SafetensorsTest, EmptyTensorMapProducesValidFile) {
  const std::string file = path("empty.safetensors");
  save_safetensors(file, {}, DType::kF32, {{"note", "empty"}});
  const SafetensorsFile loaded = load_safetensors(file);
  EXPECT_TRUE(loaded.tensors.empty());
  EXPECT_EQ(loaded.metadata.at("note"), "empty");
}

TEST_F(SafetensorsTest, RejectsMissingFile) {
  EXPECT_THROW(load_safetensors(path("does_not_exist.safetensors")), Error);
}

TEST_F(SafetensorsTest, RejectsTruncatedFile) {
  const std::string file = path("trunc.safetensors");
  {
    std::ofstream out(file, std::ios::binary);
    out.write("\x03\x00", 2);  // fewer than 8 header-length bytes
  }
  EXPECT_THROW(load_safetensors(file), Error);
}

TEST_F(SafetensorsTest, RejectsHeaderLengthBeyondFile) {
  const std::string file = path("badlen.safetensors");
  {
    std::ofstream out(file, std::ios::binary);
    const std::uint64_t huge = 1u << 20;
    out.write(reinterpret_cast<const char*>(&huge), 8);
    out.write("{}", 2);
  }
  EXPECT_THROW(load_safetensors(file), Error);
}

TEST_F(SafetensorsTest, RejectsOutOfRangeOffsets) {
  const std::string file = path("badoff.safetensors");
  {
    std::ofstream out(file, std::ios::binary);
    const std::string header =
        R"({"w":{"dtype":"F32","shape":[4],"data_offsets":[0,16]}})";
    const std::uint64_t len = header.size();
    out.write(reinterpret_cast<const char*>(&len), 8);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write("\x00\x00\x00\x00", 4);  // only 4 data bytes, offsets claim 16
  }
  EXPECT_THROW(load_safetensors(file), Error);
}

TEST_F(SafetensorsTest, RejectsTruncatedHeaderJson) {
  // Valid length prefix, but the JSON itself is cut mid-token.
  const std::string file = path("truncjson.safetensors");
  {
    std::ofstream out(file, std::ios::binary);
    const std::string header = R"({"w":{"dty)";
    const std::uint64_t len = header.size();
    out.write(reinterpret_cast<const char*>(&len), 8);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
  }
  EXPECT_THROW(load_safetensors(file), Error);
}

TEST_F(SafetensorsTest, RejectsOverlappingDataOffsets) {
  // Two well-formed entries whose byte ranges share [4, 8): each data byte
  // must belong to at most one tensor.
  const std::string file = path("overlap.safetensors");
  {
    std::ofstream out(file, std::ios::binary);
    const std::string header =
        R"({"a":{"dtype":"F32","shape":[2],"data_offsets":[0,8]},)"
        R"("b":{"dtype":"F32","shape":[2],"data_offsets":[4,12]}})";
    const std::uint64_t len = header.size();
    out.write(reinterpret_cast<const char*>(&len), 8);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    const char zeros[12] = {};
    out.write(zeros, sizeof(zeros));
  }
  EXPECT_THROW(load_safetensors(file), Error);
  EXPECT_THROW(read_safetensors_header(file), Error);
}

/// Pins the writer's deterministic byte layout: name-sorted tensors packed
/// contiguously from offset 0, __metadata__ first in a compact JSON header
/// that is space-padded to 8-byte alignment. Golden bytes are constructed by
/// hand here; if this test breaks, the on-disk format changed and every
/// byte-identity guarantee (streaming vs in-memory) must be revisited.
TEST_F(SafetensorsTest, SaveProducesGoldenBytes) {
  std::map<std::string, Tensor> tensors;
  tensors["b"] = Tensor({1}, {0.25F});          // sorts after "a"
  tensors["a"] = Tensor({2}, {1.5F, -2.0F});
  const std::string file = path("golden.safetensors");
  save_safetensors(file, tensors, DType::kF32, {{"k", "v"}});

  std::string header =
      R"({"__metadata__":{"k":"v"},)"
      R"("a":{"dtype":"F32","shape":[2],"data_offsets":[0,8]},)"
      R"("b":{"dtype":"F32","shape":[1],"data_offsets":[8,12]}})";
  while (header.size() % 8 != 0) header += ' ';

  std::string expected;
  const std::uint64_t len = header.size();
  for (int i = 0; i < 8; ++i) {
    expected += static_cast<char>((len >> (8 * i)) & 0xFF);
  }
  expected += header;
  const float data[3] = {1.5F, -2.0F, 0.25F};
  expected.append(reinterpret_cast<const char*>(data), sizeof(data));

  std::ifstream in(file, std::ios::binary);
  const std::string actual{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
  EXPECT_EQ(actual, expected);

  // And saving the same map again yields the same bytes (determinism).
  const std::string file2 = path("golden2.safetensors");
  save_safetensors(file2, tensors, DType::kF32, {{"k", "v"}});
  std::ifstream in2(file2, std::ios::binary);
  const std::string actual2{std::istreambuf_iterator<char>(in2),
                            std::istreambuf_iterator<char>()};
  EXPECT_EQ(actual2, expected);
}

TEST_F(SafetensorsTest, HeaderOnlyReadMatchesFullLoad) {
  Rng rng(3);
  std::map<std::string, Tensor> tensors;
  tensors["x"] = Tensor::randn({4, 4}, rng);
  tensors["y"] = Tensor::randn({8}, rng);
  const std::string file = path("hdr.safetensors");
  save_safetensors(file, tensors, DType::kF16, {{"m", "1"}});

  const SafetensorsHeader header = read_safetensors_header(file);
  EXPECT_EQ(header.metadata.at("m"), "1");
  ASSERT_EQ(header.tensors.size(), 2u);
  EXPECT_EQ(header.tensors.at("x").dtype, DType::kF16);
  EXPECT_EQ(header.tensors.at("x").shape, (Shape{4, 4}));
  EXPECT_EQ(header.tensors.at("x").byte_size(), 32u);
  EXPECT_EQ(header.tensors.at("y").begin, 32u);
  EXPECT_EQ(header.data_size, 32u + 16u);
}

TEST_F(SafetensorsTest, RejectsUnknownDtype) {
  const std::string file = path("baddtype.safetensors");
  {
    std::ofstream out(file, std::ios::binary);
    const std::string header =
        R"({"w":{"dtype":"I64","shape":[1],"data_offsets":[0,8]}})";
    const std::uint64_t len = header.size();
    out.write(reinterpret_cast<const char*>(&len), 8);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write("\x00\x00\x00\x00\x00\x00\x00\x00", 8);
  }
  EXPECT_THROW(load_safetensors(file), Error);
}

TEST_F(SafetensorsTest, ReservedMetadataNameRejectedOnSave) {
  std::map<std::string, Tensor> tensors;
  tensors["__metadata__"] = Tensor({1}, {0.0F});
  EXPECT_THROW(save_safetensors(path("reserved.safetensors"), tensors), Error);
}

/// Fuzz: random byte soup must never crash the loader — it either parses
/// (vacuously possible) or throws chipalign::Error.
class SafetensorsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafetensorsFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  const auto dir = std::filesystem::temp_directory_path() / "ca_st_fuzz";
  std::filesystem::create_directories(dir);
  for (int i = 0; i < 40; ++i) {
    const std::string file =
        (dir / ("fuzz_" + std::to_string(GetParam()) + "_" +
                std::to_string(i) + ".safetensors"))
            .string();
    {
      std::ofstream out(file, std::ios::binary);
      const auto size = static_cast<std::size_t>(rng.uniform_index(512));
      for (std::size_t b = 0; b < size; ++b) {
        const char byte = static_cast<char>(rng.next_u64() & 0xFF);
        out.write(&byte, 1);
      }
    }
    try {
      (void)load_safetensors(file);
    } catch (const Error&) {
      // Expected for malformed input.
    }
  }
}

/// Fuzz variant with a *valid length prefix* and random JSON-ish header, the
/// adversarial region of the format.
TEST_P(SafetensorsFuzz, CorruptedHeadersNeverCrash) {
  Rng rng(GetParam() ^ 0xF00DULL);
  const auto dir = std::filesystem::temp_directory_path() / "ca_st_fuzz";
  std::filesystem::create_directories(dir);
  const char* headers[] = {
      R"({"w":{"dtype":"F32","shape":[-1],"data_offsets":[0,4]}})",
      R"({"w":{"dtype":"F32","shape":[1],"data_offsets":[4,0]}})",
      R"({"w":{"dtype":"F32","shape":[1],"data_offsets":[0]}})",
      R"({"w":{"dtype":"F32","shape":"x","data_offsets":[0,4]}})",
      R"({"w":{"shape":[1],"data_offsets":[0,4]}})",
      R"({"w":{"dtype":"F32","shape":[2],"data_offsets":[0,4]}})",
      R"({"w":[1,2,3]})",
      R"([])",
      R"({"__metadata__":{"k":5}})",
  };
  for (std::size_t h = 0; h < std::size(headers); ++h) {
    const std::string file =
        (dir / ("hdr_" + std::to_string(GetParam()) + "_" + std::to_string(h) +
                ".safetensors"))
            .string();
    {
      std::ofstream out(file, std::ios::binary);
      const std::string header = headers[h];
      const std::uint64_t len = header.size();
      out.write(reinterpret_cast<const char*>(&len), 8);
      out.write(header.data(), static_cast<std::streamsize>(header.size()));
      out.write("\x00\x00\x00\x00", 4);
    }
    try {
      (void)load_safetensors(file);
    } catch (const Error&) {
      // Expected.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetensorsFuzz,
                         ::testing::Values(1u, 2u, 3u));

/// Parameterized round-trip across storage dtypes: the reload error must be
/// bounded by the format's precision.
class DtypeRoundTrip : public ::testing::TestWithParam<DType> {};

TEST_P(DtypeRoundTrip, ValuesSurviveWithinPrecision) {
  const DType dtype = GetParam();
  Rng rng(7);
  std::map<std::string, Tensor> tensors;
  tensors["w"] = Tensor::randn({16, 16}, rng, 0.05F);

  const auto dir = std::filesystem::temp_directory_path() / "ca_st_tests";
  std::filesystem::create_directories(dir);
  const std::string file =
      (dir / ("rt_" + dtype_name(dtype) + ".safetensors")).string();
  save_safetensors(file, tensors, dtype);
  const SafetensorsFile loaded = load_safetensors(file);

  const double tol = dtype == DType::kF32 ? 0.0
                     : dtype == DType::kF16 ? 1e-3
                                            : 8e-3;  // bf16
  const Tensor& orig = tensors.at("w");
  const Tensor& back = loaded.tensors.at("w");
  for (std::int64_t i = 0; i < orig.numel(); ++i) {
    EXPECT_NEAR(back[i], orig[i], std::abs(orig[i]) * tol + 1e-6)
        << dtype_name(dtype) << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDtypes, DtypeRoundTrip,
                         ::testing::Values(DType::kF32, DType::kF16,
                                           DType::kBF16),
                         [](const auto& info) {
                           return dtype_name(info.param);
                         });

}  // namespace
}  // namespace chipalign
