// Crash-recovery soak: kill a real merge_cli process at every registered
// failpoint in turn (CHIPALIGN_FAILPOINTS=<site>=abort simulates SIGKILL /
// power loss — no destructors, no flushes), resume the merge, and require
// the final checkpoint to be bit-identical to an uninterrupted run. Also
// pins the CLI's exit-code taxonomy (0 ok, 2 usage, 3 permanent, 4 retries
// exhausted) end to end, through real child processes.
//
// CA_MERGE_CLI_PATH is injected by tests/CMakeLists.txt as the built
// merge_cli binary's path.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "model/checkpoint.hpp"
#include "stream/shard_layout.hpp"
#include "stream/shard_writer.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

#ifndef CA_MERGE_CLI_PATH
#error "CA_MERGE_CLI_PATH must be defined by the build"
#endif

namespace chipalign {
namespace {

namespace fs = std::filesystem;

/// A small (~40 KB at f32) conformable checkpoint; sharded at 4 KB it
/// spans many shards, so kills land mid-checkpoint rather than mid-nothing.
Checkpoint make_soak_checkpoint(std::uint64_t seed, const std::string& name) {
  Rng rng(seed);
  Checkpoint ckpt;
  ckpt.config().name = name;
  ckpt.config().vocab_size = 48;
  ckpt.config().d_model = 16;
  ckpt.config().n_layers = 2;
  ckpt.config().n_heads = 4;
  ckpt.config().n_kv_heads = 2;
  ckpt.config().d_ff = 32;
  ckpt.config().max_seq_len = 32;
  ckpt.put("embed.weight", Tensor::randn({48, 16}, rng, 0.1F));
  for (int layer = 0; layer < 2; ++layer) {
    const std::string prefix = "layers." + std::to_string(layer) + ".";
    ckpt.put(prefix + "attn.wq", Tensor::randn({16, 16}, rng, 0.1F));
    ckpt.put(prefix + "attn.wo", Tensor::randn({16, 16}, rng, 0.1F));
    ckpt.put(prefix + "mlp.w1", Tensor::randn({32, 16}, rng, 0.1F));
    ckpt.put(prefix + "norm.weight", Tensor::randn({16}, rng, 0.1F));
  }
  ckpt.put("norm.weight", Tensor::randn({16}, rng, 0.1F));
  return ckpt;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return {std::istreambuf_iterator<char>(file),
          std::istreambuf_iterator<char>()};
}

/// Runs merge_cli in a child shell with CHIPALIGN_FAILPOINTS set to
/// `failpoints` (empty = disarmed) and returns its exit code.
int run_cli(const std::string& failpoints, const std::string& cli_args) {
  std::string command = "CHIPALIGN_FAILPOINTS='" + failpoints + "' ";
  command += std::string(CA_MERGE_CLI_PATH) + " " + cli_args;
  command += " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  EXPECT_NE(status, -1) << "failed to spawn: " << command;
  EXPECT_TRUE(WIFEXITED(status)) << "abnormal termination of: " << command;
  return WEXITSTATUS(status);
}

class CrashSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() / "ca_crash_soak" /
             ::testing::UnitTest::GetInstance()->current_test_info()->name())
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
    // Inputs are fabricated by this (unarmed) parent process.
    save_sharded_checkpoint(root_ + "/chip", make_soak_checkpoint(51, "chip"),
                            4u << 10);
    save_sharded_checkpoint(root_ + "/instruct",
                            make_soak_checkpoint(52, "instruct"), 4u << 10);
  }

  /// The common streaming invocation, writing into `out`.
  std::string cli_args(const std::string& out,
                       const std::string& extra = "") const {
    return "--streaming --method chipalign --lambda 0.6 --chip " + root_ +
           "/chip --instruct " + root_ + "/instruct --out " + out +
           " --shard-size-mb 0.004" + (extra.empty() ? "" : " " + extra);
  }

  /// Asserts `out` holds exactly the reference checkpoint: same file set,
  /// same bytes, and no leftover journal or temp files.
  void expect_identical_to_reference(const std::string& reference,
                                     const std::string& out) {
    std::map<std::string, std::string> want;
    for (const auto& entry : fs::directory_iterator(reference)) {
      const std::string name = entry.path().filename().string();
      want[name] = read_file_bytes(entry.path().string());
    }
    ASSERT_FALSE(want.empty());
    std::size_t got = 0;
    for (const auto& entry : fs::directory_iterator(out)) {
      const std::string name = entry.path().filename().string();
      ASSERT_TRUE(want.count(name) > 0) << "unexpected output file " << name;
      EXPECT_EQ(read_file_bytes(entry.path().string()), want.at(name))
          << name << " differs from the uninterrupted run";
      ++got;
    }
    EXPECT_EQ(got, want.size());
  }

  std::string root_;
};

// The tentpole acceptance check: for every registered failpoint, a merge
// killed there and then resumed must converge to the exact bytes of a merge
// that was never interrupted.
TEST_F(CrashSoakTest, KillAtEveryFailpointThenResumeIsBitIdentical) {
  const std::string reference = root_ + "/reference";
  ASSERT_EQ(run_cli("", cli_args(reference)), 0);
  ASSERT_TRUE(fs::exists(reference + "/" + std::string(kShardIndexFileName)));

  for (const std::string& site : failpoint::all_sites()) {
    SCOPED_TRACE("failpoint " + site);
    const std::string out = root_ + "/kill_" + site;

    const int killed = run_cli(site + "=abort", cli_args(out));
    // kAbortExitCode proves the simulated kill fired; 0 means the site is
    // not on this command's path (e.g. the single-file safetensors saver),
    // which still exercises "nothing exploded with the site armed".
    ASSERT_TRUE(killed == failpoint::kAbortExitCode || killed == 0)
        << "unexpected exit code " << killed;

    const int resumed = run_cli("", cli_args(out, "--resume"));
    EXPECT_EQ(resumed, 0);
    EXPECT_FALSE(fs::exists(out + "/merge.journal"));
    expect_identical_to_reference(reference, out);
  }
}

// Same matrix, mid-merge: skip the first few hits so the kill lands with
// shards partially written and the journal non-trivial.
TEST_F(CrashSoakTest, MidMergeKillsResumeBitIdentical) {
  const std::string reference = root_ + "/reference";
  ASSERT_EQ(run_cli("", cli_args(reference)), 0);

  for (const std::string site :
       {"shard.write", "journal.append", "journal.sync", "source.read"}) {
    SCOPED_TRACE(std::string("failpoint ") + site);
    const std::string out = root_ + "/midkill_" + site;
    const int killed = run_cli(std::string(site) + "=abort@5", cli_args(out));
    ASSERT_TRUE(killed == failpoint::kAbortExitCode || killed == 0)
        << "unexpected exit code " << killed;
    ASSERT_EQ(run_cli("", cli_args(out, "--resume")), 0);
    expect_identical_to_reference(reference, out);
  }
}

// A kill can also land during the *resume* run; a second resume must still
// converge.
TEST_F(CrashSoakTest, KillDuringResumeStillConverges) {
  const std::string reference = root_ + "/reference";
  ASSERT_EQ(run_cli("", cli_args(reference)), 0);

  const std::string out = root_ + "/out";
  ASSERT_EQ(run_cli("journal.sync=abort@3", cli_args(out)),
            failpoint::kAbortExitCode);
  const int second = run_cli("journal.sync=abort@3",
                             cli_args(out, "--resume"));
  ASSERT_TRUE(second == failpoint::kAbortExitCode || second == 0);
  ASSERT_EQ(run_cli("", cli_args(out, "--resume")), 0);
  expect_identical_to_reference(reference, out);
}

// Transient read faults under a sufficient --retry-reads budget: the run
// completes (exit 0) despite three injected failures.
TEST_F(CrashSoakTest, TransientFaultsWithRetryBudgetExitZero) {
  const std::string out = root_ + "/out";
  EXPECT_EQ(run_cli("source.read=transientx3",
                    cli_args(out, "--retry-reads 5 --retry-backoff-ms 1")),
            0);
  EXPECT_TRUE(fs::exists(out + "/" + std::string(kShardIndexFileName)));
}

// The same fault without a retry budget exhausts immediately and exits with
// the dedicated retries-exhausted code, leaving a resumable directory.
TEST_F(CrashSoakTest, ExhaustedRetriesExitFour) {
  const std::string out = root_ + "/out";
  EXPECT_EQ(run_cli("source.read=transient", cli_args(out)), 4);
  // Once the fault clears, resume completes normally.
  EXPECT_EQ(run_cli("", cli_args(out, "--resume")), 0);
}

// Permanent failures (injected ENOSPC, resume-plan mismatches, bad usage)
// map to their own codes.
TEST_F(CrashSoakTest, PermanentAndUsageFailuresExitThreeAndTwo) {
  const std::string out = root_ + "/out";
  EXPECT_EQ(run_cli("shard.write=enospc", cli_args(out)), 3);

  // Interrupt a run, then resume with a changed output dtype: the plan
  // fingerprint refuses — permanent, not retryable.
  const std::string mismatch = root_ + "/mismatch";
  ASSERT_EQ(run_cli("journal.sync=abort@3", cli_args(mismatch)),
            failpoint::kAbortExitCode);
  EXPECT_EQ(run_cli("", cli_args(mismatch, "--resume --out-dtype bf16")), 3);

  EXPECT_EQ(run_cli("", "--streaming --chip " + root_ + "/chip"), 2);
}

}  // namespace
}  // namespace chipalign
