// Tests for the RAG substrate: BM25, hashed embedder, hybrid pipeline.

#include <gtest/gtest.h>

#include "data/fact_base.hpp"
#include "rag/bm25.hpp"
#include "rag/embedder.hpp"
#include "rag/retrieval.hpp"
#include "util/error.hpp"

namespace chipalign {
namespace {

std::vector<std::string> toy_corpus() {
  return {
      "command route_nets routes the nets in fast mode",
      "stage synth runs after export and outputs the netlist",
      "to open the timing panel click the clock icon in the top bar",
      "the faq page covers common install errors",
  };
}

TEST(Bm25, ExactQueryRanksItsDocumentFirst) {
  const Bm25Index index(toy_corpus());
  const auto hits = index.query("what does command route_nets do?", 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_index, 0u);
}

TEST(Bm25, RareTermsOutweighCommonOnes) {
  const Bm25Index index(toy_corpus());
  // "the" occurs everywhere; "synth" only in doc 1.
  const auto hits = index.query("the synth", 1);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_index, 1u);
}

TEST(Bm25, UnknownTermsReturnNothing) {
  const Bm25Index index(toy_corpus());
  EXPECT_TRUE(index.query("zzzzz qqqq", 3).empty());
}

TEST(Bm25, ScoresAreNonNegativeAndSorted) {
  const Bm25Index index(toy_corpus());
  const auto hits = index.query("the nets panel errors", 4);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_GT(hits[i].score, 0.0);
    if (i > 0) EXPECT_LE(hits[i].score, hits[i - 1].score);
  }
}

TEST(Bm25, RejectsEmptyCorpus) {
  EXPECT_THROW(Bm25Index({}), Error);
}

TEST(Embedder, EmbeddingIsUnitNormOrZero) {
  const HashedEmbedder embedder(128, 3);
  const auto v = embedder.embed("routing the nets");
  double norm_sq = 0.0;
  for (float x : v) norm_sq += static_cast<double>(x) * x;
  EXPECT_NEAR(norm_sq, 1.0, 1e-5);

  const auto tiny = embedder.embed("ab");  // shorter than the n-gram
  for (float x : tiny) EXPECT_EQ(x, 0.0F);
}

TEST(Embedder, SelfSimilarityIsOne) {
  const HashedEmbedder embedder(128, 3);
  const auto a = embedder.embed("place the cells in safe mode");
  EXPECT_NEAR(HashedEmbedder::cosine(a, a), 1.0, 1e-5);
}

TEST(Embedder, SimilarTextsScoreHigherThanDissimilar) {
  const HashedEmbedder embedder(256, 3);
  const auto query = embedder.embed("route the nets fast");
  const auto close =
      embedder.embed("command route_nets routes the nets in fast mode");
  const auto far = embedder.embed("the faq page covers common install errors");
  EXPECT_GT(HashedEmbedder::cosine(query, close),
            HashedEmbedder::cosine(query, far));
}

TEST(Embedder, CaseInsensitive) {
  const HashedEmbedder embedder(128, 3);
  const auto a = embedder.embed("Route Nets");
  const auto b = embedder.embed("route nets");
  EXPECT_NEAR(HashedEmbedder::cosine(a, b), 1.0, 1e-5);
}

TEST(DenseIndex, FindsNearestDocument) {
  const DenseIndex index(toy_corpus(), HashedEmbedder(256, 3));
  const auto hits = index.query("open the timing panel", 1);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_index, 2u);
}

TEST(Pipeline, RetrievesGoldenContextForFactQuestions) {
  const FactBase facts;
  const RetrievalPipeline pipeline(facts.corpus_sentences());
  int hits_at_2 = 0;
  int total = 0;
  for (const Fact& fact : facts.facts()) {
    const auto texts = pipeline.retrieve_texts(fact.question, 2);
    ++total;
    for (const std::string& text : texts) {
      if (text == fact.context) {
        ++hits_at_2;
        break;
      }
    }
  }
  // The hybrid retriever should find the golden sentence for most facts
  // (recall@2 >= 80%); it intentionally is not perfect, which produces the
  // golden-vs-RAG gap of Table 1.
  EXPECT_GE(static_cast<double>(hits_at_2) / total, 0.8);
}

TEST(Pipeline, TopKBoundsResults) {
  const RetrievalPipeline pipeline(toy_corpus());
  EXPECT_LE(pipeline.retrieve("the nets", 2).size(), 2u);
  EXPECT_LE(pipeline.retrieve_texts("the nets", 1).size(), 1u);
}

TEST(Pipeline, FusionConsidersBothRetrievers) {
  const RetrievalPipeline pipeline(toy_corpus());
  const auto hits = pipeline.retrieve("route_nets fast mode", 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_index, 0u);
}

}  // namespace
}  // namespace chipalign
