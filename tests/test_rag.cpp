// Tests for the RAG subsystem: BM25 (including the duplicate-term and
// precomputed-tf fixes), hashed embedder, IVF ANN partition, the hybrid
// pipeline's determinism properties, concurrent batched retrieval, and the
// persisted index (roundtrip, corruption, failpoints).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <thread>
#include <unistd.h>

#include "data/fact_base.hpp"
#include "rag/ann.hpp"
#include "rag/bm25.hpp"
#include "rag/embedder.hpp"
#include "rag/index_store.hpp"
#include "rag/retrieval.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/fs_io.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {
namespace {

std::vector<std::string> toy_corpus() {
  return {
      "command route_nets routes the nets in fast mode",
      "stage synth runs after export and outputs the netlist",
      "to open the timing panel click the clock icon in the top bar",
      "the faq page covers common install errors",
  };
}

/// A larger deterministic corpus for ANN / batching / persistence tests.
std::vector<std::string> synth_corpus(std::size_t count) {
  static const char* kVerbs[] = {"routes", "checks", "reports", "updates"};
  static const char* kObjects[] = {"the nets", "the timing arcs",
                                   "the floorplan", "the scan chains"};
  Rng rng(0xFACADE);
  std::vector<std::string> docs;
  docs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string doc = "command op" + std::to_string(i) + " ";
    doc += kVerbs[rng.uniform_index(4)];
    doc += " ";
    doc += kObjects[rng.uniform_index(4)];
    docs.push_back(std::move(doc));
  }
  return docs;
}

bool hits_bitwise_equal(const std::vector<RetrievalHit>& a,
                        const std::vector<RetrievalHit>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc_index != b[i].doc_index || a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

TEST(Bm25, ExactQueryRanksItsDocumentFirst) {
  const Bm25Index index(toy_corpus());
  const auto hits = index.query("what does command route_nets do?", 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_index, 0u);
}

TEST(Bm25, RareTermsOutweighCommonOnes) {
  const Bm25Index index(toy_corpus());
  // "the" occurs everywhere; "synth" only in doc 1.
  const auto hits = index.query("the synth", 1);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_index, 1u);
}

TEST(Bm25, UnknownTermsReturnNothing) {
  const Bm25Index index(toy_corpus());
  EXPECT_TRUE(index.query("zzzzz qqqq", 3).empty());
}

TEST(Bm25, ScoresAreNonNegativeAndSorted) {
  const Bm25Index index(toy_corpus());
  const auto hits = index.query("the nets panel errors", 4);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_GT(hits[i].score, 0.0);
    if (i > 0) {
      EXPECT_LE(hits[i].score, hits[i - 1].score);
    }
  }
}

TEST(Bm25, RejectsEmptyCorpus) {
  EXPECT_THROW(Bm25Index(std::vector<std::string>{}), Error);
}

// Regression for the double-counting bug: a query term repeated N times used
// to contribute N copies of its score. Distinct terms are now collapsed, so
// "synth synth synth" scores exactly like "synth".
TEST(Bm25, DuplicateQueryTermsScoreOnce) {
  const Bm25Index index(toy_corpus());
  const auto once = index.query("synth", 4);
  const auto thrice = index.query("synth synth synth", 4);
  EXPECT_TRUE(hits_bitwise_equal(once, thrice));

  // Mixed case: duplicates of one term must not drown out a rarer term.
  const auto mixed = index.query("the the the synth", 1);
  ASSERT_FALSE(mixed.empty());
  EXPECT_EQ(mixed[0].doc_index, 1u);
}

// The postings store term frequencies counted at build time.
TEST(Bm25, PostingsStoreTermFrequencies) {
  const Bm25Index index(
      std::vector<std::string>{"tick tick tick tock", "tock"});
  const auto& postings = index.postings();
  ASSERT_EQ(postings.count("tick"), 1u);
  ASSERT_EQ(postings.at("tick").size(), 1u);
  EXPECT_EQ(postings.at("tick")[0].doc, 0u);
  EXPECT_EQ(postings.at("tick")[0].tf, 3u);
  ASSERT_EQ(postings.at("tock").size(), 2u);
  EXPECT_EQ(postings.at("tock")[0].tf, 1u);
  EXPECT_EQ(postings.at("tock")[1].tf, 1u);
  ASSERT_EQ(index.doc_token_counts().size(), 2u);
  EXPECT_EQ(index.doc_token_counts()[0], 4u);
  EXPECT_EQ(index.doc_token_counts()[1], 1u);
}

// The precomputed-tf fast path must be arithmetic-identical to the obvious
// reference implementation (per-document std::count at query time) for
// duplicate-free queries: same documents, bitwise-equal scores.
TEST(Bm25, MatchesNaiveReferenceBitwise) {
  const auto corpus = toy_corpus();
  const Bm25Index index(corpus, /*k1=*/1.5, /*b=*/0.75);

  std::vector<std::vector<std::string>> doc_tokens;
  double total_len = 0.0;
  for (const std::string& doc : corpus) {
    doc_tokens.push_back(word_tokens(doc));
    total_len += static_cast<double>(doc_tokens.back().size());
  }
  const double avg_len = total_len / static_cast<double>(corpus.size());

  const auto naive_query = [&](const std::string& text, std::size_t top_k) {
    std::vector<RetrievalHit> hits;
    for (std::size_t d = 0; d < corpus.size(); ++d) {
      double score = 0.0;
      for (const std::string& term : word_tokens(text)) {
        std::size_t df = 0;
        for (const auto& tokens : doc_tokens) {
          if (std::find(tokens.begin(), tokens.end(), term) != tokens.end()) {
            ++df;
          }
        }
        if (df == 0) continue;
        const double tf = static_cast<double>(
            std::count(doc_tokens[d].begin(), doc_tokens[d].end(), term));
        if (tf == 0.0) continue;
        const double idf =
            std::log(1.0 + (static_cast<double>(corpus.size()) -
                            static_cast<double>(df) + 0.5) /
                               (static_cast<double>(df) + 0.5));
        const double len = static_cast<double>(doc_tokens[d].size());
        score += idf * tf * (1.5 + 1.0) /
                 (tf + 1.5 * (1.0 - 0.75 + 0.75 * len / avg_len));
      }
      if (score > 0.0) hits.push_back({d, score});
    }
    std::sort(hits.begin(), hits.end(),
              [](const RetrievalHit& a, const RetrievalHit& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc_index < b.doc_index;
              });
    if (hits.size() > top_k) hits.resize(top_k);
    return hits;
  };

  for (const char* query :
       {"route_nets fast mode", "the synth netlist", "timing panel clock",
        "install errors faq", "nets"}) {
    EXPECT_TRUE(hits_bitwise_equal(index.query(query, 4),
                                   naive_query(query, 4)))
        << "query: " << query;
  }
}

TEST(Embedder, EmbeddingIsUnitNormOrZero) {
  const HashedEmbedder embedder(128, 3);
  const auto v = embedder.embed("routing the nets");
  double norm_sq = 0.0;
  for (float x : v) norm_sq += static_cast<double>(x) * x;
  EXPECT_NEAR(norm_sq, 1.0, 1e-5);

  const auto tiny = embedder.embed("ab");  // shorter than the n-gram
  for (float x : tiny) EXPECT_EQ(x, 0.0F);
}

TEST(Embedder, SelfSimilarityIsOne) {
  const HashedEmbedder embedder(128, 3);
  const auto a = embedder.embed("place the cells in safe mode");
  EXPECT_NEAR(HashedEmbedder::cosine(a, a), 1.0, 1e-5);
}

TEST(Embedder, SimilarTextsScoreHigherThanDissimilar) {
  const HashedEmbedder embedder(256, 3);
  const auto query = embedder.embed("route the nets fast");
  const auto close =
      embedder.embed("command route_nets routes the nets in fast mode");
  const auto far = embedder.embed("the faq page covers common install errors");
  EXPECT_GT(HashedEmbedder::cosine(query, close),
            HashedEmbedder::cosine(query, far));
}

TEST(Embedder, CaseInsensitive) {
  const HashedEmbedder embedder(128, 3);
  const auto a = embedder.embed("Route Nets");
  const auto b = embedder.embed("route nets");
  EXPECT_NEAR(HashedEmbedder::cosine(a, b), 1.0, 1e-5);
}

TEST(DenseIndex, FindsNearestDocument) {
  const DenseIndex index(toy_corpus(), HashedEmbedder(256, 3));
  const auto hits = index.query("open the timing panel", 1);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_index, 2u);
}

TEST(Ivf, NprobeEqualsNlistMatchesExactScanBitwise) {
  const auto corpus = synth_corpus(300);
  const DenseIndex dense(corpus, HashedEmbedder(128, 3));
  const IvfIndex ivf =
      IvfIndex::build(dense.embeddings(), 128, IvfConfig{/*nlist=*/12});
  ASSERT_EQ(ivf.nlist(), 12u);
  for (const char* query :
       {"op7 routes the nets", "op250 checks the floorplan", "scan chains"}) {
    const auto vec = dense.embedder().embed(query);
    const auto exact = dense.query_vec(vec, 10);
    const auto probed_all = ivf.query(vec, 10, /*nprobe=*/12,
                                      dense.embeddings());
    EXPECT_TRUE(hits_bitwise_equal(exact, probed_all)) << "query: " << query;
  }
}

TEST(Ivf, BuildIsDeterministicAtAnyThreadCount) {
  const auto corpus = synth_corpus(400);
  const DenseIndex dense(corpus, HashedEmbedder(64, 3));
  const IvfConfig config{/*nlist=*/8};
  ThreadPool pool(3);
  const IvfIndex serial = IvfIndex::build(dense.embeddings(), 64, config);
  const IvfIndex pooled =
      IvfIndex::build(dense.embeddings(), 64, config, &pool);
  EXPECT_EQ(serial.centroids(), pooled.centroids());
  EXPECT_EQ(serial.lists(), pooled.lists());
}

TEST(Ivf, EveryDocumentIsAssignedExactlyOnce) {
  const auto corpus = synth_corpus(257);
  const DenseIndex dense(corpus, HashedEmbedder(64, 3));
  const IvfIndex ivf = IvfIndex::build(dense.embeddings(), 64, IvfConfig{});
  std::set<std::uint32_t> seen;
  for (const auto& list : ivf.lists()) {
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
    for (std::uint32_t doc : list) EXPECT_TRUE(seen.insert(doc).second);
  }
  EXPECT_EQ(seen.size(), corpus.size());
}

TEST(Ivf, RecallAtTenIsHighAtModestNprobe) {
  const auto corpus = synth_corpus(2000);
  const DenseIndex dense(corpus, HashedEmbedder(128, 3));
  const IvfIndex ivf =
      IvfIndex::build(dense.embeddings(), 128, IvfConfig{/*nlist=*/32});
  double recall_sum = 0.0;
  int n = 0;
  for (int q = 0; q < 32; ++q) {
    const std::string query =
        "what does command op" + std::to_string(q * 61) + " do";
    const auto vec = dense.embedder().embed(query);
    const auto exact = dense.query_vec(vec, 10);
    if (exact.empty()) continue;
    const auto approx = ivf.query(vec, 10, /*nprobe=*/8, dense.embeddings());
    std::set<std::size_t> ids;
    for (const auto& hit : approx) ids.insert(hit.doc_index);
    std::size_t found = 0;
    for (const auto& hit : exact) found += ids.count(hit.doc_index);
    recall_sum += static_cast<double>(found) / exact.size();
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_GE(recall_sum / n, 0.9);
}

TEST(Pipeline, RetrievesGoldenContextForFactQuestions) {
  const FactBase facts;
  const RetrievalPipeline pipeline(facts.corpus_sentences());
  int hits_at_2 = 0;
  int total = 0;
  for (const Fact& fact : facts.facts()) {
    const auto texts = pipeline.retrieve_texts(fact.question, 2);
    ++total;
    for (const std::string& text : texts) {
      if (text == fact.context) {
        ++hits_at_2;
        break;
      }
    }
  }
  // The hybrid retriever should find the golden sentence for most facts
  // (recall@2 >= 80%); it intentionally is not perfect, which produces the
  // golden-vs-RAG gap of Table 1.
  EXPECT_GE(static_cast<double>(hits_at_2) / total, 0.8);
}

TEST(Pipeline, TopKBoundsResults) {
  const RetrievalPipeline pipeline(toy_corpus());
  EXPECT_LE(pipeline.retrieve("the nets", 2).size(), 2u);
  EXPECT_LE(pipeline.retrieve_texts("the nets", 1).size(), 1u);
}

TEST(Pipeline, FusionConsidersBothRetrievers) {
  const RetrievalPipeline pipeline(toy_corpus());
  const auto hits = pipeline.retrieve("route_nets fast mode", 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_index, 0u);
}

TEST(Pipeline, HoldsTheCorpusExactlyOnce) {
  const RetrievalPipeline pipeline(toy_corpus());
  // One shared store: the lexical and dense indexes point at the same
  // vector, not copies of it.
  EXPECT_EQ(pipeline.bm25().documents().get(),
            pipeline.dense().documents().get());
  EXPECT_EQ(pipeline.documents().get(), pipeline.bm25().documents().get());
}

// -- determinism properties --------------------------------------------------

TEST(RagProperty, ScoreTiesOrderByDocIndex) {
  // Duplicate documents produce exactly tied scores everywhere; the order
  // among ties must be ascending doc index, in every component.
  const std::vector<std::string> corpus = {
      "clock tree synthesis balances skew",
      "clock tree synthesis balances skew",
      "clock tree synthesis balances skew",
      "placement legalizes the macros",
  };
  const Bm25Index bm25(corpus);
  const auto lexical = bm25.query("clock tree synthesis", 4);
  ASSERT_EQ(lexical.size(), 3u);
  for (std::size_t i = 1; i < lexical.size(); ++i) {
    EXPECT_EQ(lexical[i].score, lexical[i - 1].score);
    EXPECT_GT(lexical[i].doc_index, lexical[i - 1].doc_index);
  }

  const DenseIndex dense(corpus, HashedEmbedder(128, 3));
  const auto semantic = dense.query("clock tree synthesis balances skew", 3);
  ASSERT_EQ(semantic.size(), 3u);
  EXPECT_EQ(semantic[0].doc_index, 0u);
  EXPECT_EQ(semantic[1].doc_index, 1u);
  EXPECT_EQ(semantic[2].doc_index, 2u);

  const RetrievalPipeline pipeline(corpus);
  const auto fused = pipeline.retrieve("clock tree synthesis", 3);
  ASSERT_EQ(fused.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      fused.begin(), fused.end(),
      [](const RetrievalHit& a, const RetrievalHit& b) {
        return a.doc_index < b.doc_index;
      }));
}

TEST(RagProperty, RrfFusionIsInvariantUnderRetrieverListOrder) {
  const RetrievalPipeline pipeline(toy_corpus());
  const RetrievalConfig& config = pipeline.config();
  const std::string query = "the nets timing errors";
  const auto lexical =
      pipeline.bm25().query(query, config.candidates_per_retriever);
  const auto semantic =
      pipeline.dense().query(query, config.candidates_per_retriever);

  // Fold the candidate lists in both orders; the fused scores must be
  // bitwise-identical (commutative per-document accumulation), and must
  // match what the pipeline actually returns.
  const auto fuse = [&](const std::vector<RetrievalHit>& first,
                        const std::vector<RetrievalHit>& second) {
    std::map<std::size_t, double> fused;
    for (const auto* list : {&first, &second}) {
      for (std::size_t rank = 0; rank < list->size(); ++rank) {
        fused[(*list)[rank].doc_index] +=
            1.0 / (config.rrf_k + static_cast<double>(rank) + 1.0);
      }
    }
    std::vector<RetrievalHit> hits;
    for (const auto& [doc, score] : fused) hits.push_back({doc, score});
    std::sort(hits.begin(), hits.end(),
              [](const RetrievalHit& a, const RetrievalHit& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc_index < b.doc_index;
              });
    return hits;
  };
  const auto ab = fuse(lexical, semantic);
  const auto ba = fuse(semantic, lexical);
  EXPECT_TRUE(hits_bitwise_equal(ab, ba));
  EXPECT_TRUE(hits_bitwise_equal(ab, pipeline.retrieve(query, ab.size())));
}

TEST(RagProperty, EmptyAndTokenlessQueriesReturnNoHits) {
  const RetrievalPipeline pipeline(toy_corpus());
  EXPECT_TRUE(pipeline.retrieve("", 5).empty());
  EXPECT_TRUE(pipeline.retrieve("   ", 5).empty());
  EXPECT_TRUE(pipeline.retrieve("?!, --- ...", 5).empty());
  EXPECT_TRUE(pipeline.retrieve_texts("", 5).empty());
  EXPECT_TRUE(pipeline.bm25().query("", 5).empty());
  EXPECT_TRUE(pipeline.dense().query("", 5).empty());
}

TEST(RagProperty, BatchedRetrievalMatchesSerialAtAnyPoolSize) {
  const auto corpus = synth_corpus(200);
  RetrievalConfig config;
  config.embed_dim = 64;
  config.ann_nlist = 8;
  const RetrievalPipeline pipeline(corpus, config);
  std::vector<std::string> queries;
  for (int q = 0; q < 37; ++q) {
    queries.push_back("what does op" + std::to_string(q * 5) + " update");
  }
  std::vector<std::vector<RetrievalHit>> serial(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    serial[i] = pipeline.retrieve(queries[i], 5);
  }
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{5}}) {
    ThreadPool pool(workers);
    const auto batched = pipeline.retrieve_batch(queries, 5, &pool);
    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(hits_bitwise_equal(batched[i], serial[i]))
          << "workers " << workers << " query " << i;
    }
  }
  // Null pool runs serially through the same code path.
  const auto null_pool = pipeline.retrieve_batch(queries, 5, nullptr);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(hits_bitwise_equal(null_pool[i], serial[i]));
  }
}

// -- concurrency (exercised under tsan in CI) --------------------------------

TEST(RagConcurrency, ConcurrentBatchedRetrievalOnOnePipeline) {
  const auto corpus = synth_corpus(150);
  RetrievalConfig config;
  config.embed_dim = 64;
  config.ann_nlist = 6;
  const RetrievalPipeline pipeline(corpus, config);
  std::vector<std::string> queries;
  for (int q = 0; q < 24; ++q) {
    queries.push_back("command op" + std::to_string(q * 6));
  }
  const auto expected = pipeline.retrieve_batch(queries, 5, nullptr);

  // Several client threads share one immutable pipeline and one pool, each
  // issuing its own pooled batch (per-caller Batch tokens make concurrent
  // parallel_for safe). Results must match the serial baseline exactly.
  ThreadPool pool(4);
  std::vector<std::thread> clients;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        const auto got = pipeline.retrieve_batch(queries, 5, &pool);
        for (std::size_t i = 0; i < expected.size(); ++i) {
          if (!hits_bitwise_equal(got[i], expected[i])) ++mismatches[t];
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[t], 0) << "client " << t;
}

// -- persistence -------------------------------------------------------------

class RagStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ca_rag_store_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "index.bin").string();
  }
  void TearDown() override {
    failpoint::disarm_all();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(RagStoreTest, SaveLoadRoundtripIsBitwiseIdentical) {
  const auto corpus = synth_corpus(300);
  RetrievalConfig config;
  config.embed_dim = 96;
  config.ann_nlist = 10;
  const RetrievalPipeline built(corpus, config);
  built.save(path_);
  const RetrievalPipeline loaded = RetrievalPipeline::load(path_, config);

  // Raw state: corpus, postings (with tf), embeddings, ANN layout.
  ASSERT_EQ(loaded.corpus_size(), built.corpus_size());
  EXPECT_EQ(*loaded.documents(), *built.documents());
  EXPECT_EQ(loaded.bm25().doc_token_counts(), built.bm25().doc_token_counts());
  ASSERT_EQ(loaded.bm25().postings().size(), built.bm25().postings().size());
  for (const auto& [term, list] : built.bm25().postings()) {
    const auto it = loaded.bm25().postings().find(term);
    ASSERT_NE(it, loaded.bm25().postings().end()) << term;
    ASSERT_EQ(it->second.size(), list.size()) << term;
    for (std::size_t i = 0; i < list.size(); ++i) {
      EXPECT_EQ(it->second[i].doc, list[i].doc);
      EXPECT_EQ(it->second[i].tf, list[i].tf);
    }
  }
  EXPECT_EQ(loaded.dense().embeddings(), built.dense().embeddings());
  EXPECT_EQ(loaded.ann().centroids(), built.ann().centroids());
  EXPECT_EQ(loaded.ann().lists(), built.ann().lists());

  // Behavior: rankings (ids AND scores) are bitwise-identical.
  for (const char* query :
       {"op12 routes the nets", "op250", "the scan chains", ""}) {
    EXPECT_TRUE(hits_bitwise_equal(built.retrieve(query, 10),
                                   loaded.retrieve(query, 10)))
        << "query: " << query;
  }

  // The loaded pipeline also holds its corpus once.
  EXPECT_EQ(loaded.bm25().documents().get(),
            loaded.dense().documents().get());
}

TEST_F(RagStoreTest, SaveWithoutAnnRoundtrips) {
  const RetrievalPipeline built(toy_corpus());  // ann_nlist 0 -> exact scan
  ASSERT_FALSE(built.has_ann());
  built.save(path_);
  const RetrievalPipeline loaded = RetrievalPipeline::load(path_);
  EXPECT_FALSE(loaded.has_ann());
  EXPECT_TRUE(hits_bitwise_equal(built.retrieve("route_nets fast", 3),
                                 loaded.retrieve("route_nets fast", 3)));
}

TEST_F(RagStoreTest, SuccessfulSaveLeavesNoTempLitter) {
  const RetrievalPipeline built(toy_corpus());
  built.save(path_);
  EXPECT_TRUE(std::filesystem::exists(path_));
  EXPECT_FALSE(std::filesystem::exists(fs_io::temp_path_for(path_)));
}

TEST_F(RagStoreTest, MissingFileFailsWithPathInError) {
  try {
    RetrievalPipeline::load((dir_ / "absent.bin").string());
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("absent.bin"), std::string::npos);
  }
}

// -- corruption (exercised under asan in CI) ---------------------------------

using RagCorruptionTest = RagStoreTest;

TEST_F(RagCorruptionTest, TruncatedFileIsRejectedAtEveryLength) {
  const RetrievalPipeline built(toy_corpus());
  built.save(path_);
  const auto full = std::filesystem::file_size(path_);
  // Every prefix must fail cleanly — footer gone, table gone, section cut.
  for (const std::uintmax_t keep :
       {std::uintmax_t{0}, std::uintmax_t{17}, full / 2, full - 1}) {
    std::filesystem::resize_file(path_, keep);
    try {
      RetrievalPipeline::load(path_);
      FAIL() << "expected Error at length " << keep;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated or corrupt"),
                std::string::npos)
          << e.what();
    }
    // Restore for the next iteration.
    std::filesystem::remove(path_);
    built.save(path_);
  }
}

TEST_F(RagCorruptionTest, BitflippedByteFailsAChecksum) {
  const RetrievalPipeline built(synth_corpus(50));
  built.save(path_);
  const auto size = std::filesystem::file_size(path_);
  for (const std::uintmax_t offset : {size / 4, size / 2, size - 8}) {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
    f.close();
    EXPECT_THROW(RetrievalPipeline::load(path_), Error) << "offset " << offset;
    std::filesystem::remove(path_);
    built.save(path_);
  }
}

TEST_F(RagCorruptionTest, ReadFailpointBitflipIsCaught) {
  const RetrievalPipeline built(toy_corpus());
  built.save(path_);
  failpoint::Spec spec;
  spec.action = failpoint::Action::kBitflip;
  failpoint::arm("ragindex.read", spec);
  EXPECT_THROW(RetrievalPipeline::load(path_), Error);
  failpoint::disarm("ragindex.read");
  // Disarmed, the same file loads fine — the file itself was never touched.
  EXPECT_EQ(RetrievalPipeline::load(path_).corpus_size(), 4u);
}

TEST_F(RagCorruptionTest, ReadFailpointShortReadIsCaught) {
  const RetrievalPipeline built(toy_corpus());
  built.save(path_);
  failpoint::Spec spec;
  spec.action = failpoint::Action::kShortIo;
  spec.arg = 64;
  failpoint::arm("ragindex.read", spec);
  try {
    RetrievalPipeline::load(path_);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated or corrupt"),
              std::string::npos)
        << e.what();
  }
  failpoint::disarm("ragindex.read");
}

TEST_F(RagCorruptionTest, SaveFailpointLeavesNoFileAndNoLitter) {
  const RetrievalPipeline built(toy_corpus());
  failpoint::Spec spec;
  spec.action = failpoint::Action::kError;
  failpoint::arm("ragindex.save", spec);
  EXPECT_THROW(built.save(path_), Error);
  failpoint::disarm("ragindex.save");
  EXPECT_FALSE(std::filesystem::exists(path_));
  EXPECT_FALSE(std::filesystem::exists(fs_io::temp_path_for(path_)));
  // And the save works once disarmed.
  built.save(path_);
  EXPECT_EQ(RetrievalPipeline::load(path_).corpus_size(), 4u);
}

}  // namespace
}  // namespace chipalign
