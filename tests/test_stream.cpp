// Tests for the streaming subsystem: shard planning, the sharded
// reader/writer pair, and the bounded-memory streaming merge engine
// (byte-identity with the in-memory path, resume, checksums, budgets).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/safetensors.hpp"
#include "merge/registry.hpp"
#include "model/checkpoint.hpp"
#include "stream/shard_layout.hpp"
#include "stream/shard_writer.hpp"
#include "stream/streaming_merge.hpp"
#include "stream/tensor_source.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"
#include "util/rng.hpp"

namespace chipalign {
namespace {

namespace fs = std::filesystem;

std::string read_file_bytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return {std::istreambuf_iterator<char>(file),
          std::istreambuf_iterator<char>()};
}

/// A conformable 14-tensor checkpoint with varied shapes (~60 KB at f32).
Checkpoint make_checkpoint(std::uint64_t seed, const std::string& name) {
  Rng rng(seed);
  Checkpoint ckpt;
  ckpt.config().name = name;
  ckpt.config().vocab_size = 64;
  ckpt.config().d_model = 16;
  ckpt.config().n_layers = 3;
  ckpt.config().n_heads = 4;
  ckpt.config().n_kv_heads = 2;
  ckpt.config().d_ff = 32;
  ckpt.config().max_seq_len = 32;
  ckpt.put("embed.weight", Tensor::randn({64, 16}, rng, 0.1F));
  for (int layer = 0; layer < 3; ++layer) {
    const std::string prefix = "layers." + std::to_string(layer) + ".";
    ckpt.put(prefix + "attn.wq", Tensor::randn({16, 16}, rng, 0.1F));
    ckpt.put(prefix + "attn.wo", Tensor::randn({16, 16}, rng, 0.1F));
    ckpt.put(prefix + "mlp.w1", Tensor::randn({32, 16}, rng, 0.1F));
    ckpt.put(prefix + "norm.weight", Tensor::randn({16}, rng, 0.1F));
  }
  ckpt.put("norm.weight", Tensor::randn({16}, rng, 0.1F));
  return ckpt;
}

class StreamTest : public ::testing::Test {
 protected:
  std::string dir(const std::string& name) {
    const auto path = fs::temp_directory_path() / "ca_stream_tests" /
                      (std::string(::testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name()) +
                       "_" + name);
    fs::remove_all(path);
    fs::create_directories(path);
    return path.string();
  }
};

TEST(ShardLayoutTest, ShardFileNameIsCanonical) {
  EXPECT_EQ(shard_file_name(1, 1), "model-00001-of-00001.safetensors");
  EXPECT_EQ(shard_file_name(2, 17), "model-00002-of-00017.safetensors");
  EXPECT_THROW(shard_file_name(0, 1), Error);
  EXPECT_THROW(shard_file_name(3, 2), Error);
}

TEST(ShardLayoutTest, PlanPacksNameSortedWithRolls) {
  // Four 40-byte tensors with a 100-byte budget: shards of 2+2.
  std::vector<std::pair<std::string, Shape>> entries = {
      {"a", {10}}, {"b", {10}}, {"c", {10}}, {"d", {10}}};
  const ShardPlan plan = plan_shards(entries, DType::kF32, 100);
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_EQ(plan.shards[0].filename, "model-00001-of-00002.safetensors");
  EXPECT_EQ(plan.shards[0].tensors.count("a"), 1u);
  EXPECT_EQ(plan.shards[0].tensors.count("b"), 1u);
  EXPECT_EQ(plan.shards[1].tensors.count("c"), 1u);
  EXPECT_EQ(plan.shards[0].data_size, 80u);
  EXPECT_EQ(plan.total_size, 160u);
  EXPECT_EQ(plan.shard_of.at("d"), 1u);
  // Offsets are contiguous within each shard, in name order.
  EXPECT_EQ(plan.shards[0].tensors.at("a").begin, 0u);
  EXPECT_EQ(plan.shards[0].tensors.at("b").begin, 40u);
}

TEST(ShardLayoutTest, PlanGivesOversizeTensorOwnShard) {
  std::vector<std::pair<std::string, Shape>> entries = {
      {"big", {100}}, {"small", {2}}};
  const ShardPlan plan = plan_shards(entries, DType::kF32, 64);
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_EQ(plan.shards[0].data_size, 400u);
}

TEST(ShardLayoutTest, PlanZeroBudgetMeansSingleShard) {
  std::vector<std::pair<std::string, Shape>> entries = {
      {"a", {1000}}, {"b", {1000}}};
  EXPECT_EQ(plan_shards(entries, DType::kF32, 0).shards.size(), 1u);
}

TEST(ShardLayoutTest, PlanRejectsUnsortedInput) {
  std::vector<std::pair<std::string, Shape>> entries = {{"b", {1}}, {"a", {1}}};
  EXPECT_THROW(plan_shards(entries, DType::kF32, 0), Error);
  std::vector<std::pair<std::string, Shape>> dupes = {{"a", {1}}, {"a", {1}}};
  EXPECT_THROW(plan_shards(dupes, DType::kF32, 0), Error);
}

TEST_F(StreamTest, ShardIndexRoundTrips) {
  const std::string out = dir("index");
  ShardIndex index;
  index.total_size = 1234;
  index.weight_map["w.a"] = "model-00001-of-00002.safetensors";
  index.weight_map["w.b"] = "model-00002-of-00002.safetensors";
  index.checksums["w.a"] = hash_to_hex(0xDEADBEEFULL);
  index.metadata["chipalign.config"] = "{\"name\":\"x\"}";
  const std::string path = index.save(out);

  const ShardIndex back = ShardIndex::load(path);
  EXPECT_EQ(back.total_size, 1234u);
  EXPECT_EQ(back.weight_map, index.weight_map);
  EXPECT_EQ(back.checksums, index.checksums);
  EXPECT_EQ(back.metadata, index.metadata);
  EXPECT_EQ(back.shard_files().size(), 2u);
}

TEST_F(StreamTest, ShardedSaveLoadRoundTripsAcrossThreeShards) {
  const Checkpoint original = make_checkpoint(11, "roundtrip");
  const std::string out = dir("ckpt");
  // ~17 KB total; 4 KB shards force several rolls.
  save_sharded_checkpoint(out, original, 4u << 10);

  const ShardedTensorSource source = ShardedTensorSource::open(out);
  EXPECT_GE(source.shard_count(), 3u);
  EXPECT_EQ(source.names().size(), original.tensors().size());

  const Checkpoint back = load_sharded_checkpoint(out);
  EXPECT_EQ(back.config(), original.config());
  for (const auto& [name, tensor] : original.tensors()) {
    const Tensor& loaded = back.at(name);
    ASSERT_TRUE(loaded.same_shape(tensor)) << name;
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_EQ(loaded[i], tensor[i]) << name << "[" << i << "]";
    }
  }
  EXPECT_TRUE(verify_sharded_checkpoint(out).empty());
}

TEST_F(StreamTest, SingleShardIsByteIdenticalToSingleFileSave) {
  const Checkpoint ckpt = make_checkpoint(5, "golden");
  const std::string out = dir("sharded");
  const std::string single = dir("single") + "/ckpt.safetensors";
  ckpt.save(single, DType::kF32);
  save_sharded_checkpoint(out, ckpt, /*shard_size_bytes=*/0);

  const std::string shard_bytes =
      read_file_bytes(out + "/model-00001-of-00001.safetensors");
  EXPECT_EQ(shard_bytes, read_file_bytes(single));
}

TEST_F(StreamTest, LazyReadMatchesFullLoadForHalfStorage) {
  const Checkpoint ckpt = make_checkpoint(7, "lazy");
  const std::string file = dir("f16") + "/ckpt.safetensors";
  ckpt.save(file, DType::kF16);

  const SafetensorsFile full = load_safetensors(file);
  const ShardedTensorSource source = ShardedTensorSource::open(file);
  ASSERT_EQ(source.names().size(), full.tensors.size());
  for (const auto& [name, tensor] : full.tensors) {
    const Tensor lazy = source.read(name);
    ASSERT_TRUE(lazy.same_shape(tensor)) << name;
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_EQ(lazy[i], tensor[i]) << name << "[" << i << "]";
    }
  }
  EXPECT_EQ(source.metadata().at("format"), "chipalign-checkpoint-v1");
}

TEST_F(StreamTest, IndexReferencingMissingShardThrows) {
  const std::string out = dir("missing");
  ShardIndex index;
  index.weight_map["w"] = "model-00001-of-00001.safetensors";
  index.save(out);
  EXPECT_THROW(ShardedTensorSource::open(out), Error);
}

TEST_F(StreamTest, IndexListingAbsentTensorThrows) {
  const Checkpoint ckpt = make_checkpoint(9, "absent");
  const std::string out = dir("absent");
  save_sharded_checkpoint(out, ckpt, 0);
  // Rewrite the manifest claiming one extra tensor in the existing shard.
  ShardIndex index = ShardIndex::load(out + "/" + kShardIndexFileName);
  index.weight_map["not.there"] = index.weight_map.begin()->second;
  index.save(out);
  EXPECT_THROW(ShardedTensorSource::open(out), Error);
}

TEST_F(StreamTest, VerifyDetectsCorruptedShard) {
  const Checkpoint ckpt = make_checkpoint(13, "corrupt");
  const std::string out = dir("corrupt");
  save_sharded_checkpoint(out, ckpt, 4u << 10);
  ASSERT_TRUE(verify_sharded_checkpoint(out).empty());

  // Flip one byte in the middle of the first shard's data section.
  const ShardedTensorSource source = ShardedTensorSource::open(out);
  const TensorRecord& rec = source.record("embed.weight");
  {
    std::fstream file(rec.file,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(rec.begin + rec.byte_size() / 2));
    const char corrupted = '\x5A';
    file.write(&corrupted, 1);
  }
  const std::vector<std::string> bad = verify_sharded_checkpoint(out);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "embed.weight");
}

// ---------------------------------------------------------------------------
// Streaming merge engine
// ---------------------------------------------------------------------------

struct StreamingMergeCase {
  std::string method;
  bool needs_base;
};

class StreamingMergeTest
    : public StreamTest,
      public ::testing::WithParamInterface<StreamingMergeCase> {
 protected:
  /// Saves chip/instruct/base as multi-shard checkpoints and returns
  /// (in-memory merged, sources dir).
  void prepare() {
    chip_ = make_checkpoint(21, "chip");
    instruct_ = make_checkpoint(22, "instruct");
    base_ = make_checkpoint(23, "base");
    src_dir_ = dir("src");
    save_sharded_checkpoint(src_dir_ + "/chip", chip_, 4u << 10);
    save_sharded_checkpoint(src_dir_ + "/instruct", instruct_, 4u << 10);
    save_sharded_checkpoint(src_dir_ + "/base", base_, 4u << 10);
  }

  StreamingMergeReport run_streaming(const std::string& out,
                                     StreamingMergeConfig config) {
    const auto merger = create_merger(GetParam().method);
    const ShardedTensorSource chip =
        ShardedTensorSource::open(src_dir_ + "/chip");
    const ShardedTensorSource instruct =
        ShardedTensorSource::open(src_dir_ + "/instruct");
    const ShardedTensorSource base =
        ShardedTensorSource::open(src_dir_ + "/base");
    return merge_streaming(*merger, chip, instruct,
                           GetParam().needs_base ? &base : nullptr, options_,
                           config, out);
  }

  Checkpoint run_in_memory() {
    const auto merger = create_merger(GetParam().method);
    return merge_checkpoints(*merger, chip_, instruct_,
                             GetParam().needs_base ? &base_ : nullptr,
                                 options_);
  }

  void expect_identical(const Checkpoint& expected, const std::string& out_dir,
                        DType dtype) {
    const ShardedTensorSource merged = ShardedTensorSource::open(out_dir);
    ASSERT_EQ(merged.names().size(), expected.tensors().size());
    for (const auto& [name, tensor] : expected.tensors()) {
      const std::vector<std::uint8_t> expected_bytes =
          encode_tensor_bytes(tensor, dtype);
      EXPECT_EQ(merged.read_bytes(name), expected_bytes)
          << "tensor '" << name << "' differs between paths";
    }
    const Checkpoint loaded = load_sharded_checkpoint(out_dir);
    EXPECT_EQ(loaded.config(), expected.config());
    EXPECT_TRUE(verify_sharded_checkpoint(out_dir).empty());
  }

  Checkpoint chip_, instruct_, base_;
  std::string src_dir_;
  MergeOptions options_;
};

TEST_P(StreamingMergeTest, MultiShardOutputMatchesInMemoryBitExactly) {
  prepare();
  ASSERT_GE(ShardedTensorSource::open(src_dir_ + "/chip").shard_count(), 3u);
  ASSERT_GE(chip_.tensors().size(), 12u);

  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;  // several output shards
  config.log_every = 0;
  const std::string out = dir("out");
  const StreamingMergeReport report = run_streaming(out, config);

  EXPECT_EQ(report.tensor_count, chip_.tensors().size());
  EXPECT_GE(report.shard_count, 3u);
  EXPECT_EQ(report.resumed_count, 0u);
  EXPECT_GT(report.bytes_written, 0u);
  EXPECT_FALSE(fs::exists(out + "/merge.journal"));

  expect_identical(run_in_memory(), out, DType::kF32);
}

TEST_P(StreamingMergeTest, SingleShardFileIsByteIdenticalToInMemorySave) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 0;  // single shard
  config.log_every = 0;
  const std::string out = dir("out");
  run_streaming(out, config);

  const std::string single = dir("ref") + "/merged.safetensors";
  run_in_memory().save(single, DType::kF32);
  EXPECT_EQ(read_file_bytes(out + "/model-00001-of-00001.safetensors"),
            read_file_bytes(single));
}

TEST_P(StreamingMergeTest, HalfPrecisionOutputMatchesInMemoryEncode) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 8u << 10;
  config.out_dtype = DType::kBF16;
  config.log_every = 0;
  const std::string out = dir("out");
  run_streaming(out, config);

  const Checkpoint expected = run_in_memory();
  const ShardedTensorSource merged = ShardedTensorSource::open(out);
  for (const auto& [name, tensor] : expected.tensors()) {
    EXPECT_EQ(merged.read_bytes(name), encode_tensor_bytes(tensor,
                                                           DType::kBF16))
        << name;
  }
}

TEST_P(StreamingMergeTest, InterruptedMergeResumesToIdenticalBytes) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;

  // Reference: one clean streaming run.
  const std::string clean = dir("clean");
  run_streaming(clean, config);

  // Interrupted run: fail after 5 tensors, journal left behind.
  const std::string out = dir("out");
  StreamingMergeConfig failing = config;
  failing.fail_after_tensors = 5;
  EXPECT_THROW(run_streaming(out, failing), Error);
  EXPECT_TRUE(fs::exists(out + "/merge.journal"));
  EXPECT_FALSE(fs::exists(out + "/" + std::string(kShardIndexFileName)));

  // Resume completes, skipping at least the journaled tensors.
  StreamingMergeConfig resuming = config;
  resuming.resume = true;
  const StreamingMergeReport report = run_streaming(out, resuming);
  EXPECT_GE(report.resumed_count, 5u);
  EXPECT_LT(report.resumed_count, chip_.tensors().size());
  EXPECT_FALSE(fs::exists(out + "/merge.journal"));

  // Byte-identical to the clean run, and to the in-memory path.
  const ShardedTensorSource a = ShardedTensorSource::open(clean);
  const ShardedTensorSource b = ShardedTensorSource::open(out);
  for (const std::string& name : a.names()) {
    EXPECT_EQ(a.read_bytes(name), b.read_bytes(name)) << name;
  }
  expect_identical(run_in_memory(), out, DType::kF32);
}

TEST_P(StreamingMergeTest, ResumeRejectsChangedMergePlan) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;
  config.fail_after_tensors = 3;
  const std::string out = dir("out");
  EXPECT_THROW(run_streaming(out, config), Error);

  // Same resume, different lambda => different plan fingerprint.
  StreamingMergeConfig resuming;
  resuming.shard_size_bytes = config.shard_size_bytes;
  resuming.log_every = 0;
  resuming.resume = true;
  options_.lambda = 0.25;
  EXPECT_THROW(run_streaming(out, resuming), Error);
}

TEST_P(StreamingMergeTest, InflightBudgetIsRespected) {
  prepare();
  // Budget sized to roughly two of the largest tensors' working sets: the
  // engine must keep its accounted in-flight bytes under it.
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.max_inflight_bytes = 64u << 10;
  config.log_every = 0;
  const std::string out = dir("out");
  const StreamingMergeReport report = run_streaming(out, config);
  EXPECT_LE(report.max_inflight_bytes_observed, config.max_inflight_bytes);
  expect_identical(run_in_memory(), out, DType::kF32);
}

// Thread-count invariance: the merge workers fan out over a pool, but every
// kernel reduction uses fixed-shape blocking and each tensor is written by
// exactly one task, so the output files must be byte-identical whether the
// pool has one worker or many.
TEST_P(StreamingMergeTest, OutputBytesAreInvariantToPoolSize) {
  prepare();
  ThreadPool solo(1);
  ThreadPool many(4);

  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;  // several output shards
  config.log_every = 0;

  const std::string out_solo = dir("out_solo");
  config.pool = &solo;
  run_streaming(out_solo, config);

  const std::string out_many = dir("out_many");
  config.pool = &many;
  run_streaming(out_many, config);

  // Compare every produced file (shards + index) byte-for-byte.
  std::vector<std::string> names_solo;
  for (const auto& entry : fs::directory_iterator(out_solo)) {
    names_solo.push_back(entry.path().filename().string());
  }
  ASSERT_GE(names_solo.size(), 2u);
  for (const std::string& name : names_solo) {
    ASSERT_TRUE(fs::exists(out_many + "/" + name)) << name;
    EXPECT_EQ(read_file_bytes(out_solo + "/" + name),
              read_file_bytes(out_many + "/" + name))
        << "file '" << name << "' differs between pool sizes";
  }
  EXPECT_EQ(std::distance(fs::directory_iterator(out_many),
                          fs::directory_iterator{}),
            static_cast<std::ptrdiff_t>(names_solo.size()));
}

// The pipeline=false escape hatch (strictly serial, on the calling thread)
// must produce exactly the same files as the pipelined engine.
TEST_P(StreamingMergeTest, SerialEscapeHatchMatchesPipelinedByteForByte) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;

  const std::string out_pipe = dir("out_pipe");
  config.pipeline = true;
  const StreamingMergeReport pipelined = run_streaming(out_pipe, config);
  EXPECT_TRUE(pipelined.pipelined);

  const std::string out_serial = dir("out_serial");
  config.pipeline = false;
  const StreamingMergeReport serial = run_streaming(out_serial, config);
  EXPECT_FALSE(serial.pipelined);
  EXPECT_EQ(serial.bytes_written, pipelined.bytes_written);

  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(out_serial)) {
    const std::string name = entry.path().filename().string();
    ASSERT_TRUE(fs::exists(out_pipe + "/" + name)) << name;
    EXPECT_EQ(read_file_bytes(out_serial + "/" + name),
              read_file_bytes(out_pipe + "/" + name))
        << "file '" << name << "' differs between serial and pipelined";
    ++files;
  }
  EXPECT_GE(files, 2u);
  expect_identical(run_in_memory(), out_serial, DType::kF32);
}

// Every scheduling knob must be invisible in the output bytes: io thread
// count, prefetch depth, and their combination with a tiny byte budget.
TEST_P(StreamingMergeTest, IoAndPrefetchKnobsAreByteInvariant) {
  prepare();
  StreamingMergeConfig reference;
  reference.shard_size_bytes = 4u << 10;
  reference.log_every = 0;
  const std::string ref_out = dir("ref");
  run_streaming(ref_out, reference);

  const struct {
    std::size_t io_threads;
    std::size_t prefetch;
    std::uint64_t budget;
  } cases[] = {{1, 1, 1}, {1, 4, 64u << 10}, {3, 2, 32u << 10}, {4, 16, 1}};
  int case_id = 0;
  for (const auto& knobs : cases) {
    StreamingMergeConfig config = reference;
    config.io_threads = knobs.io_threads;
    config.prefetch_tensors = knobs.prefetch;
    config.max_inflight_bytes = knobs.budget;
    const std::string out = dir("out" + std::to_string(case_id++));
    run_streaming(out, config);
    for (const auto& entry : fs::directory_iterator(ref_out)) {
      const std::string name = entry.path().filename().string();
      EXPECT_EQ(read_file_bytes(out + "/" + name),
                read_file_bytes(ref_out + "/" + name))
          << "file '" << name << "' differs at io_threads="
          << knobs.io_threads << " prefetch=" << knobs.prefetch
          << " budget=" << knobs.budget;
    }
  }
}

// Kill-at-the-wrong-moment torture: a journal whose final line was torn by
// the kill (partial append, no trailing newline) must have that entry
// discarded on resume — the engine redoes exactly that tensor, and only it.
TEST_P(StreamingMergeTest, TornTrailingJournalEntryIsDiscardedOnResume) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;

  const std::string out = dir("out");
  StreamingMergeConfig failing = config;
  failing.fail_after_tensors = 5;
  EXPECT_THROW(run_streaming(out, failing), Error);

  // The writer journals in plan order, so exactly 5 entries exist. Tear the
  // last one: chop a few bytes off the file end, leaving a partial line
  // with no terminating newline — exactly what a mid-append kill leaves.
  const std::string journal = out + "/merge.journal";
  ASSERT_TRUE(fs::exists(journal));
  const std::uint64_t size = fs::file_size(journal);
  fs::resize_file(journal, size - 4);

  StreamingMergeConfig resuming = config;
  resuming.resume = true;
  const StreamingMergeReport report = run_streaming(out, resuming);
  EXPECT_EQ(report.resumed_count, 4u);  // 5 journaled, 1 torn -> 4 trusted
  EXPECT_FALSE(fs::exists(journal));
  expect_identical(run_in_memory(), out, DType::kF32);
}

// A corrupted (complete but garbled) journal entry is skipped the same way:
// its tensor is remerged, every other journaled tensor is trusted.
TEST_P(StreamingMergeTest, CorruptedJournalEntryIsRedoneOnResume) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;

  const std::string out = dir("out");
  StreamingMergeConfig failing = config;
  failing.fail_after_tensors = 5;
  EXPECT_THROW(run_streaming(out, failing), Error);

  // Garble the checksum of the second entry (line 3: magic + entry 1 + it).
  const std::string journal = out + "/merge.journal";
  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 6u);  // magic + 5 entries
  lines[2] = "done not-a-checksum " + lines[2].substr(lines[2].rfind(' ') + 1);
  {
    std::ofstream rewrite(journal, std::ios::trunc);
    for (const std::string& line : lines) rewrite << line << '\n';
  }

  StreamingMergeConfig resuming = config;
  resuming.resume = true;
  const StreamingMergeReport report = run_streaming(out, resuming);
  EXPECT_EQ(report.resumed_count, 4u);
  expect_identical(run_in_memory(), out, DType::kF32);
}

// Mid-pipeline interruption: the fault hook fires inside the writer thread
// while prefetch/compute stages are still busy; the engine must drain,
// surface the error, and leave a plan-order journal that resumes cleanly.
TEST_P(StreamingMergeTest, PipelineInterruptionLeavesResumableJournal) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;
  config.io_threads = 3;
  config.prefetch_tensors = 8;

  const std::string out = dir("out");
  StreamingMergeConfig failing = config;
  failing.fail_after_tensors = 3;
  EXPECT_THROW(run_streaming(out, failing), Error);

  // In-plan-order commits: the journal holds exactly the magic line plus
  // the first 3 tensors in name-sorted order, each line complete.
  std::vector<std::string> lines;
  {
    std::ifstream in(out + "/merge.journal");
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);
  const ShardedTensorSource chip =
      ShardedTensorSource::open(src_dir_ + "/chip");
  for (std::size_t i = 0; i < 3; ++i) {
    const std::string& expected_name = chip.names()[i];
    EXPECT_EQ(lines[i + 1].substr(lines[i + 1].rfind(' ') + 1), expected_name);
  }

  StreamingMergeConfig resuming = config;
  resuming.resume = true;
  const StreamingMergeReport report = run_streaming(out, resuming);
  EXPECT_EQ(report.resumed_count, 3u);
  expect_identical(run_in_memory(), out, DType::kF32);
}

// The prefetch stage verifies every read against the source manifest's
// XXH64: a corrupt input shard must fail the merge loudly, in both engines.
TEST_P(StreamingMergeTest, CorruptSourceShardFailsTheMerge) {
  prepare();
  const ShardedTensorSource chip =
      ShardedTensorSource::open(src_dir_ + "/chip");
  const TensorRecord& rec = chip.record("embed.weight");
  {
    std::fstream file(rec.file,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(rec.begin + rec.byte_size() / 2));
    const char corrupted = '\x5A';
    file.write(&corrupted, 1);
  }
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;
  EXPECT_THROW(run_streaming(dir("out_pipe"), config), Error);
  config.pipeline = false;
  EXPECT_THROW(run_streaming(dir("out_serial"), config), Error);
}

TEST_P(StreamingMergeTest, TinyBudgetStillMakesProgress) {
  prepare();
  // Budget smaller than any single tensor: the admit-one rule serializes
  // the pipeline but the merge still completes and matches.
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.max_inflight_bytes = 1;
  config.log_every = 0;
  const std::string out = dir("out");
  run_streaming(out, config);
  expect_identical(run_in_memory(), out, DType::kF32);
}

/// Disarms every failpoint on scope exit, so a failed assertion cannot leak
/// an armed site into later tests.
struct FailpointGuard {
  ~FailpointGuard() { failpoint::disarm_all(); }
};

// Resuming under a different output dtype would interleave old-dtype and
// new-dtype tensors in one checkpoint; the plan fingerprint must refuse.
TEST_P(StreamingMergeTest, ResumeRejectsChangedOutDtype) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;
  config.fail_after_tensors = 3;
  const std::string out = dir("out");
  EXPECT_THROW(run_streaming(out, config), Error);

  StreamingMergeConfig resuming;
  resuming.shard_size_bytes = config.shard_size_bytes;
  resuming.log_every = 0;
  resuming.resume = true;
  resuming.out_dtype = DType::kBF16;
  try {
    run_streaming(out, resuming);
    FAIL() << "resume with a changed out_dtype must be refused";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("different merge plan"),
              std::string::npos)
        << e.what();
  }
}

// A journal entry vouches for bytes in a shard file; if that file vanished
// between runs, the entry must not be trusted and the tensor is remerged.
TEST_P(StreamingMergeTest, DeletedShardInvalidatesItsJournaledTensors) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;

  const std::string out = dir("out");
  StreamingMergeConfig failing = config;
  failing.fail_after_tensors = 5;
  EXPECT_THROW(run_streaming(out, failing), Error);

  // Delete the first output shard: it holds the earliest plan-order
  // tensors, i.e. journaled ones.
  bool removed = false;
  for (const auto& entry : fs::directory_iterator(out)) {
    if (entry.path().filename().string().rfind("model-00001-", 0) == 0) {
      fs::remove(entry.path());
      removed = true;
    }
  }
  ASSERT_TRUE(removed);

  StreamingMergeConfig resuming = config;
  resuming.resume = true;
  const StreamingMergeReport report = run_streaming(out, resuming);
  EXPECT_LT(report.resumed_count, 5u);  // the deleted shard's entries dropped
  expect_identical(run_in_memory(), out, DType::kF32);
}

// A corrupted output manifest is detected on open, and a rerun over the
// same directory rebuilds it (the shards themselves are still valid).
TEST_P(StreamingMergeTest, CorruptOutputIndexIsDetectedAndRebuiltByRerun) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;
  const std::string out = dir("out");
  run_streaming(out, config);

  const std::string index_path =
      out + "/" + std::string(kShardIndexFileName);
  fs::resize_file(index_path, fs::file_size(index_path) / 2);  // truncate
  try {
    ShardedTensorSource::open(out);
    FAIL() << "a truncated index.json must not open";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated or corrupt"),
              std::string::npos)
        << e.what();
  }

  StreamingMergeConfig rerun = config;
  rerun.resume = true;  // no journal left: a full, shard-reusing remerge
  run_streaming(out, rerun);
  expect_identical(run_in_memory(), out, DType::kF32);
}

// Transient read faults (injected EINTR-style failures) are retried with
// backoff; the merge completes with every source read checksum-verified.
TEST_P(StreamingMergeTest, TransientReadFaultsAreRetriedToCompletion) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;
  config.pipeline = false;
  config.read_retry.max_attempts = 5;
  config.read_retry.backoff_ms = 1;

  FailpointGuard guard;
  failpoint::arm_from_text("source.read=transientx3");
  const std::string out = dir("out");
  const StreamingMergeReport report = run_streaming(out, config);

  EXPECT_EQ(report.read_retries, 3u);
  const std::size_t sources = GetParam().needs_base ? 3u : 2u;
  EXPECT_EQ(report.source_checksums_verified,
            chip_.tensors().size() * sources);
  expect_identical(run_in_memory(), out, DType::kF32);
}

// A bit flipped in a read buffer fails checksum verification, which counts
// as transient: the retry re-reads clean bytes and re-verifies them.
TEST_P(StreamingMergeTest, BitflippedReadIsHealedByRetry) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;
  config.pipeline = false;
  config.read_retry.max_attempts = 3;
  config.read_retry.backoff_ms = 1;

  FailpointGuard guard;
  failpoint::arm_from_text("source.read=bitflipx1");
  const std::string out = dir("out");
  const StreamingMergeReport report = run_streaming(out, config);

  EXPECT_EQ(report.read_retries, 1u);
  expect_identical(run_in_memory(), out, DType::kF32);
}

// Without retries enabled (max_attempts = 1, the default), a persistent
// transient fault surfaces as RetriesExhaustedError — the distinct class
// merge_cli maps to its own exit code — and leaves a resumable journal.
TEST_P(StreamingMergeTest, ExhaustedRetriesRaiseDistinctError) {
  prepare();
  StreamingMergeConfig config;
  config.shard_size_bytes = 4u << 10;
  config.log_every = 0;
  config.pipeline = false;

  FailpointGuard guard;
  failpoint::arm_from_text("source.read=transient");
  const std::string out = dir("out");
  EXPECT_THROW(run_streaming(out, config), RetriesExhaustedError);
  EXPECT_TRUE(fs::exists(out + "/merge.journal"));

  // Once the fault clears, the same directory resumes to a full merge.
  failpoint::disarm_all();
  StreamingMergeConfig resuming = config;
  resuming.resume = true;
  run_streaming(out, resuming);
  expect_identical(run_in_memory(), out, DType::kF32);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, StreamingMergeTest,
    ::testing::Values(StreamingMergeCase{"chipalign", false},
                      StreamingMergeCase{"ties", true}),
    [](const auto& info) { return info.param.method; });

// mark_written feeds finish()'s completeness check, so a double mark or an
// off-plan name would let a merge "finish" with a tensor never written.
TEST_F(StreamTest, MarkWrittenRejectsDuplicatesAndOffPlanNames) {
  std::vector<std::pair<std::string, Shape>> entries = {{"a", {4}},
                                                        {"b", {4}}};
  ShardPlan plan = plan_shards(entries, DType::kF32, 0);
  ShardSetWriter writer(dir("out"), std::move(plan), {});
  writer.mark_written("a");
  EXPECT_THROW(writer.mark_written("a"), Error);
  EXPECT_THROW(writer.mark_written("off-plan"), Error);
  // The same ledger backs write_tensor: a marked tensor cannot be written
  // again either.
  EXPECT_THROW(writer.write_tensor("a", std::vector<std::uint8_t>(16)),
               Error);
  writer.mark_written("b");
  EXPECT_EQ(writer.written_count(), 2u);
}

TEST_F(StreamTest, StreamingRequiresBaseForTaskVectorMethods) {
  const Checkpoint chip = make_checkpoint(31, "chip");
  const Checkpoint instruct = make_checkpoint(32, "instruct");
  const std::string src = dir("src");
  save_sharded_checkpoint(src + "/chip", chip, 0);
  save_sharded_checkpoint(src + "/instruct", instruct, 0);
  const auto merger = create_merger("ties");
  const ShardedTensorSource chip_src = ShardedTensorSource::open(src + "/chip");
  const ShardedTensorSource instruct_src =
      ShardedTensorSource::open(src + "/instruct");
  EXPECT_THROW(merge_streaming(*merger, chip_src, instruct_src, nullptr,
                               MergeOptions{}, StreamingMergeConfig{},
                               dir("out")),
               Error);
}

TEST_F(StreamTest, StreamingRejectsNonConformableSources) {
  Checkpoint chip = make_checkpoint(41, "chip");
  Checkpoint instruct = make_checkpoint(42, "instruct");
  instruct.tensors().erase("norm.weight");
  const std::string src = dir("src");
  save_sharded_checkpoint(src + "/chip", chip, 0);
  save_sharded_checkpoint(src + "/instruct", instruct, 0);
  const auto merger = create_merger("chipalign");
  const ShardedTensorSource chip_src = ShardedTensorSource::open(src + "/chip");
  const ShardedTensorSource instruct_src =
      ShardedTensorSource::open(src + "/instruct");
  EXPECT_THROW(merge_streaming(*merger, chip_src, instruct_src, nullptr,
                               MergeOptions{}, StreamingMergeConfig{},
                               dir("out")),
               Error);
}

}  // namespace
}  // namespace chipalign
