// Property and unit tests for the merge library (the paper's core method
// plus all baselines).

#include <gtest/gtest.h>

#include <cmath>

#include "merge/breadcrumbs.hpp"
#include "merge/dare.hpp"
#include "merge/della.hpp"
#include "merge/geodesic.hpp"
#include "merge/geometry.hpp"
#include "merge/linear.hpp"
#include "merge/registry.hpp"
#include "merge/task_arithmetic.hpp"
#include "merge/ties.hpp"
#include "merge/tv_utils.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {
namespace {

/// Random checkpoint with a fixed tensor layout.
Checkpoint random_checkpoint(std::uint64_t seed, float scale = 1.0F) {
  Rng rng(seed);
  Checkpoint ckpt;
  ckpt.config().name = "test-" + std::to_string(seed);
  ckpt.put("embed", Tensor::randn({8, 4}, rng, scale));
  ckpt.put("layer.0.w", Tensor::randn({4, 4}, rng, scale));
  ckpt.put("layer.0.norm", Tensor::randn({4}, rng, scale));
  ckpt.put("layer.1.w", Tensor::randn({4, 4}, rng, scale));
  return ckpt;
}

/// Checkpoint = base + small random delta (same-basin finetune model).
Checkpoint perturbed(const Checkpoint& base, std::uint64_t seed, float eps) {
  Rng rng(seed);
  Checkpoint out = base;
  for (const std::string& name : base.names()) {
    Tensor delta = Tensor::randn(base.at(name).shape(), rng, eps);
    out.put(name, ops::add(base.at(name), delta));
  }
  return out;
}

double checkpoint_distance(const Checkpoint& a, const Checkpoint& b) {
  double worst = 0.0;
  for (const std::string& name : a.names()) {
    worst = std::max(worst, ops::max_abs_diff(a.at(name), b.at(name)));
  }
  return worst;
}

MergeOptions opts(double lambda) {
  MergeOptions o;
  o.lambda = lambda;
  return o;
}

// -- registry
// -------------------------------------------------------------------

TEST(Registry, CreatesEveryListedMerger) {
  for (const std::string& name : merger_names()) {
    const auto merger = create_merger(name);
    ASSERT_NE(merger, nullptr);
    EXPECT_EQ(merger->name(), name);
  }
}

TEST(Registry, RejectsUnknownName) {
  EXPECT_THROW(create_merger("slerp-3000"), Error);
}

// -- the ChipAlign geodesic merge
// --------------------------------------------------

TEST(Geodesic, LambdaOneRecoversChipModel) {
  const Checkpoint chip = random_checkpoint(1);
  const Checkpoint instruct = random_checkpoint(2);
  const Checkpoint merged = merge_checkpoints(GeodesicMerger(), chip, instruct,
                                              nullptr, opts(1.0));
  EXPECT_LT(checkpoint_distance(merged, chip), 2e-5);
}

TEST(Geodesic, LambdaZeroRecoversInstructModel) {
  const Checkpoint chip = random_checkpoint(1);
  const Checkpoint instruct = random_checkpoint(2);
  const Checkpoint merged = merge_checkpoints(GeodesicMerger(), chip, instruct,
                                              nullptr, opts(0.0));
  EXPECT_LT(checkpoint_distance(merged, instruct), 2e-5);
}

TEST(Geodesic, NormIsGeometricMeanOfEndpointNorms) {
  const Checkpoint chip = random_checkpoint(3, 2.0F);
  const Checkpoint instruct = random_checkpoint(4, 0.5F);
  const double lambda = 0.6;
  const Checkpoint merged = merge_checkpoints(GeodesicMerger(), chip, instruct,
                                              nullptr, opts(lambda));
  for (const std::string& name : chip.names()) {
    const double expected = std::pow(ops::frobenius_norm(chip.at(name)),
                                     lambda) *
                            std::pow(ops::frobenius_norm(instruct.at(name)),
                                     1.0 - lambda);
    EXPECT_NEAR(ops::frobenius_norm(merged.at(name)), expected,
                expected * 1e-4)
        << name;
  }
}

TEST(Geodesic, SymmetricUnderOperandSwap) {
  // f(chip, instruct; lambda) == f(instruct, chip; 1 - lambda)
  const Checkpoint a = random_checkpoint(5);
  const Checkpoint b = random_checkpoint(6);
  const Checkpoint m1 =
      merge_checkpoints(GeodesicMerger(), a, b, nullptr, opts(0.3));
  const Checkpoint m2 =
      merge_checkpoints(GeodesicMerger(), b, a, nullptr, opts(0.7));
  EXPECT_LT(checkpoint_distance(m1, m2), 1e-5);
}

TEST(Geodesic, IdenticalInputsAreFixedPoint) {
  const Checkpoint a = random_checkpoint(7);
  const Checkpoint merged =
      merge_checkpoints(GeodesicMerger(), a, a, nullptr, opts(0.6));
  EXPECT_LT(checkpoint_distance(merged, a), 1e-5);
}

TEST(Geodesic, ZeroNormSideFallsBackToLerp) {
  Checkpoint chip;
  chip.put("w", Tensor({2, 2}));  // all zeros
  Checkpoint instruct;
  instruct.put("w", Tensor({2, 2}, {2, 2, 2, 2}));
  const Checkpoint merged =
      merge_checkpoints(GeodesicMerger(), chip, instruct, nullptr, opts(0.25));
  // LERP: 0.25*0 + 0.75*2 = 1.5
  EXPECT_NEAR(merged.at("w")[0], 1.5F, 1e-6);
}

TEST(SlerpUnit, StaysOnUnitSphere) {
  Rng rng(8);
  Tensor a = Tensor::randn({16}, rng);
  Tensor b = Tensor::randn({16}, rng);
  ops::scale(a.values(), static_cast<float>(1.0 / ops::norm(a.values())));
  ops::scale(b.values(), static_cast<float>(1.0 / ops::norm(b.values())));
  for (double lambda : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    const Tensor p = slerp_unit(a, b, lambda, 1e-6);
    EXPECT_NEAR(ops::frobenius_norm(p), 1.0, 1e-4) << lambda;
  }
}

TEST(SlerpUnit, AgreesWithLerpForTinyAngles) {
  // Two nearly parallel unit vectors: SLERP ~ normalized LERP.
  Tensor a({4}, {1, 0, 0, 0});
  Tensor b({4}, {0.99999988F, 0.0005F, 0, 0});
  ops::scale(b.values(), static_cast<float>(1.0 / ops::norm(b.values())));
  const Tensor s = slerp_unit(a, b, 0.5, 1e-6);
  Tensor l = ops::scaled(ops::add(a, b), 0.5F);
  ops::scale(l.values(), static_cast<float>(1.0 / ops::norm(l.values())));
  EXPECT_LT(ops::max_abs_diff(s, l), 1e-4);
}

TEST(SlerpUnit, MidpointBisectsTheAngle) {
  Tensor a({2}, {1, 0});
  Tensor b({2}, {0, 1});
  const Tensor mid = slerp_unit(a, b, 0.5, 1e-9);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(mid[0], inv_sqrt2, 1e-6);
  EXPECT_NEAR(mid[1], inv_sqrt2, 1e-6);
}

/// Property sweep over lambda: the arc point's angle from each endpoint
/// scales linearly with lambda (the defining property of a geodesic).
class GeodesicLambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GeodesicLambdaSweep, ArcAngleSplitsLinearly) {
  const double lambda = GetParam();
  Tensor a({3}, {1, 0, 0});
  Tensor b({3}, {0, 1, 0});  // angle pi/2
  const Tensor p = slerp_unit(a, b, lambda, 1e-9);
  const double angle_from_b = std::acos(
      std::clamp(ops::dot(p.values(), b.values()), -1.0, 1.0));
  // lambda weights the *first* operand; angle from b should be lambda*pi/2.
  EXPECT_NEAR(angle_from_b, lambda * M_PI / 2.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, GeodesicLambdaSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75,
                                           0.9, 1.0));

// -- linear methods
// ---------------------------------------------------------------

TEST(Lerp, ComputesConvexCombination) {
  Checkpoint a;
  a.put("w", Tensor({2}, {2, 4}));
  Checkpoint b;
  b.put("w", Tensor({2}, {0, 0}));
  const Checkpoint merged =
      merge_checkpoints(LerpMerger(), a, b, nullptr, opts(0.75));
  EXPECT_NEAR(merged.at("w")[0], 1.5F, 1e-6);
  EXPECT_NEAR(merged.at("w")[1], 3.0F, 1e-6);
}

TEST(ModelSoup, IgnoresLambdaAndAverages) {
  Checkpoint a;
  a.put("w", Tensor({1}, {2.0F}));
  Checkpoint b;
  b.put("w", Tensor({1}, {4.0F}));
  for (double lambda : {0.0, 0.5, 1.0}) {
    const Checkpoint merged =
        merge_checkpoints(ModelSoupMerger(), a, b, nullptr, opts(lambda));
    EXPECT_NEAR(merged.at("w")[0], 3.0F, 1e-6);
  }
}

// -- task arithmetic
// -----------------------------------------------------------------

TEST(TaskArithmetic, RequiresBase) {
  const Checkpoint a = random_checkpoint(1);
  const Checkpoint b = random_checkpoint(2);
  EXPECT_THROW(
      merge_checkpoints(TaskArithmeticMerger(), a, b, nullptr, opts(0.5)),
      Error);
}

TEST(TaskArithmetic, ReconstructsWeightedDeltaSum) {
  const Checkpoint base = random_checkpoint(10);
  const Checkpoint chip = perturbed(base, 11, 0.1F);
  const Checkpoint instruct = perturbed(base, 12, 0.1F);
  const double lambda = 0.6;
  const Checkpoint merged = merge_checkpoints(TaskArithmeticMerger(), chip,
                                              instruct, &base, opts(lambda));
  for (const std::string& name : base.names()) {
    const Tensor expected = ops::add(
        base.at(name),
        ops::add(ops::scaled(ops::sub(chip.at(name), base.at(name)),
                             static_cast<float>(lambda)),
                 ops::scaled(ops::sub(instruct.at(name), base.at(name)),
                             static_cast<float>(1.0 - lambda))));
    EXPECT_LT(ops::max_abs_diff(merged.at(name), expected), 1e-5) << name;
  }
}

TEST(TaskArithmetic, IdenticalFinetunesRecoverTheFinetune) {
  const Checkpoint base = random_checkpoint(13);
  const Checkpoint tuned = perturbed(base, 14, 0.2F);
  const Checkpoint merged = merge_checkpoints(TaskArithmeticMerger(), tuned,
                                              tuned, &base, opts(0.5));
  EXPECT_LT(checkpoint_distance(merged, tuned), 1e-5);
}

// -- tv utils
// ------------------------------------------------------------------------

TEST(TvUtils, TrimKeepsExactlyTopFraction) {
  Tensor tv({8}, {0.1F, -0.9F, 0.3F, 0.05F, -0.6F, 0.2F, 0.0F, 0.8F});
  tv::trim_by_magnitude(tv, 0.25);  // keep top 2 of 8
  int nonzero = 0;
  for (float v : tv.values()) nonzero += v != 0.0F ? 1 : 0;
  EXPECT_EQ(nonzero, 2);
  EXPECT_EQ(tv[1], -0.9F);
  EXPECT_EQ(tv[7], 0.8F);
}

TEST(TvUtils, TrimDensityOneIsIdentity) {
  Tensor tv({4}, {1, -2, 3, -4});
  Tensor copy = tv;
  tv::trim_by_magnitude(tv, 1.0);
  EXPECT_LT(ops::max_abs_diff(tv, copy), 1e-9);
}

TEST(TvUtils, MagnitudeRanksAscending) {
  Tensor tv({4}, {0.5F, -0.1F, 2.0F, -1.0F});
  const auto ranks = tv::magnitude_ranks(tv);
  EXPECT_EQ(ranks[1], 0);  // |-0.1| smallest
  EXPECT_EQ(ranks[0], 1);
  EXPECT_EQ(ranks[3], 2);
  EXPECT_EQ(ranks[2], 3);  // |2.0| largest
}

TEST(TvUtils, ElectSignsUsesWeightedMass) {
  Tensor a({3}, {1.0F, -1.0F, 0.2F});
  Tensor b({3}, {-0.4F, 2.0F, 0.0F});
  // Equal weights: mass = {0.6, 1.0, 0.2} -> signs {+, +, +}
  auto signs = tv::elect_signs(a, b, 0.5, 0.5);
  EXPECT_EQ(signs[0], 1);
  EXPECT_EQ(signs[1], 1);
  EXPECT_EQ(signs[2], 1);
  // Chip-heavy weights flip entries where chip dominates.
  signs = tv::elect_signs(a, b, 0.9, 0.1);
  EXPECT_EQ(signs[1], -1);
}

TEST(TvUtils, DisjointMergeAveragesAgreeingEntriesOnly) {
  Tensor a({2}, {1.0F, -2.0F});
  Tensor b({2}, {3.0F, 4.0F});
  const std::vector<int> signs = {1, 1};
  const Tensor merged = tv::disjoint_merge(a, b, 0.5, 0.5, signs);
  EXPECT_NEAR(merged[0], 2.0F, 1e-6);  // both agree: mean
  EXPECT_NEAR(merged[1], 4.0F, 1e-6);  // only b agrees with +
}

TEST(TvUtils, StochasticDropPreservesExpectation) {
  Rng rng(99);
  const std::size_t n = 20000;
  Tensor tv(Shape{static_cast<std::int64_t>(n)});
  tv.fill(1.0F);
  std::vector<double> keep(n, 0.25);
  tv::stochastic_drop_rescale(tv, keep, rng);
  double mean = 0.0;
  for (float v : tv.values()) mean += v;
  mean /= static_cast<double>(n);
  EXPECT_NEAR(mean, 1.0, 0.05);  // E[v/p * Bernoulli(p)] = v
}

// -- TIES
// ---------------------------------------------------------------------------

TEST(Ties, IdenticalFinetunesSurviveTrimAndMerge) {
  const Checkpoint base = random_checkpoint(20);
  const Checkpoint tuned = perturbed(base, 21, 0.2F);
  MergeOptions o = opts(0.5);
  o.density = 1.0;  // no trimming: disjoint mean of identical vectors
  const Checkpoint merged =
      merge_checkpoints(TiesMerger(), tuned, tuned, &base, o);
  EXPECT_LT(checkpoint_distance(merged, tuned), 1e-5);
}

TEST(Ties, OpposingSignsDoNotCancel) {
  // Chip pushes +1, instruct pushes -1 on the same parameter. Plain
  // averaging gives 0; TIES elects one sign and keeps that contribution.
  Checkpoint base;
  base.put("w", Tensor({2}, {0.0F, 0.0F}));
  Checkpoint chip;
  chip.put("w", Tensor({2}, {1.0F, 0.5F}));
  Checkpoint instruct;
  instruct.put("w", Tensor({2}, {-0.8F, 0.5F}));
  MergeOptions o = opts(0.6);
  o.density = 1.0;
  const Checkpoint merged =
      merge_checkpoints(TiesMerger(), chip, instruct, &base, o);
  // Mass on entry 0: 0.6*1 + 0.4*(-0.8) = 0.28 > 0 -> keep chip's +1 only.
  EXPECT_NEAR(merged.at("w")[0], 1.0F, 1e-5);
  EXPECT_NEAR(merged.at("w")[1], 0.5F, 1e-5);
}

TEST(Ties, SparsificationZeroesSmallEntries) {
  Checkpoint base;
  base.put("w", Tensor({4}, {0, 0, 0, 0}));
  Checkpoint chip;
  chip.put("w", Tensor({4}, {1.0F, 0.01F, 0.01F, 0.01F}));
  Checkpoint instruct;
  instruct.put("w", Tensor({4}, {0.01F, 2.0F, 0.01F, 0.01F}));
  MergeOptions o = opts(0.5);
  o.density = 0.25;  // keep 1 of 4 per task vector
  const Checkpoint merged =
      merge_checkpoints(TiesMerger(), chip, instruct, &base, o);
  EXPECT_NEAR(merged.at("w")[0], 1.0F, 1e-5);
  EXPECT_NEAR(merged.at("w")[1], 2.0F, 1e-5);
  EXPECT_NEAR(merged.at("w")[2], 0.0F, 1e-6);
  EXPECT_NEAR(merged.at("w")[3], 0.0F, 1e-6);
}

// -- Model Breadcrumbs
// ---------------------------------------------------------------

TEST(Breadcrumbs, MasksBothTailsOfTheTaskVector) {
  Checkpoint base;
  base.put("w", Tensor({10}));
  Checkpoint chip;
  // Magnitudes 1..10: with density 0.5 and outlier_frac 0.1, keep ranks
  // 1..4 (0-indexed) by descending magnitude: entries 9,8,7,6 survive,
  // entry 10 (the outlier) and the bottom five are dropped.
  chip.put("w", Tensor({10}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  Checkpoint instruct = base;  // zero task vector

  MergeOptions o = opts(1.0);  // pure chip side
  o.density = 0.5;
  o.breadcrumbs_outlier_frac = 0.1;
  const Checkpoint merged =
      merge_checkpoints(BreadcrumbsMerger(), chip, instruct, &base, o);
  const Tensor& w = merged.at("w");
  EXPECT_EQ(w[9], 0.0F);  // top outlier masked
  EXPECT_EQ(w[8], 9.0F);  // band kept
  EXPECT_EQ(w[5], 6.0F);
  EXPECT_EQ(w[4], 0.0F);  // bottom tail masked
  EXPECT_EQ(w[0], 0.0F);
}

TEST(Breadcrumbs, ZeroOutlierFracMatchesTrimmedTaskArithmetic) {
  const Checkpoint base = random_checkpoint(70);
  const Checkpoint chip = perturbed(base, 71, 0.1F);
  const Checkpoint instruct = perturbed(base, 72, 0.1F);

  MergeOptions o = opts(0.6);
  o.density = 1.0;
  o.breadcrumbs_outlier_frac = 0.0;
  const Checkpoint bc =
      merge_checkpoints(BreadcrumbsMerger(), chip, instruct, &base, o);
  const Checkpoint ta = merge_checkpoints(TaskArithmeticMerger(), chip,
                                          instruct, &base, o);
  EXPECT_LT(checkpoint_distance(bc, ta), 1e-6);
}

TEST(Breadcrumbs, RequiresBase) {
  const Checkpoint a = random_checkpoint(73);
  const Checkpoint b = random_checkpoint(74);
  EXPECT_THROW(
      merge_checkpoints(BreadcrumbsMerger(), a, b, nullptr, opts(0.5)), Error);
}

// -- DELLA / DARE
// ----------------------------------------------------------------------

TEST(Della, DeterministicForFixedSeed) {
  const Checkpoint base = random_checkpoint(30);
  const Checkpoint chip = perturbed(base, 31, 0.2F);
  const Checkpoint instruct = perturbed(base, 32, 0.2F);
  const Checkpoint m1 =
      merge_checkpoints(DellaMerger(), chip, instruct, &base, opts(0.6));
  const Checkpoint m2 =
      merge_checkpoints(DellaMerger(), chip, instruct, &base, opts(0.6));
  EXPECT_EQ(checkpoint_distance(m1, m2), 0.0);
}

TEST(Della, DifferentSeedsDiffer) {
  const Checkpoint base = random_checkpoint(30);
  const Checkpoint chip = perturbed(base, 31, 0.2F);
  const Checkpoint instruct = perturbed(base, 32, 0.2F);
  MergeOptions o1 = opts(0.6);
  MergeOptions o2 = opts(0.6);
  o2.seed = o1.seed + 1;
  const Checkpoint m1 =
      merge_checkpoints(DellaMerger(), chip, instruct, &base, o1);
  const Checkpoint m2 =
      merge_checkpoints(DellaMerger(), chip, instruct, &base, o2);
  EXPECT_GT(checkpoint_distance(m1, m2), 0.0);
}

TEST(Dare, ExpectationApproximatesTaskArithmetic) {
  // Average many DARE merges with different seeds: converges to TA.
  const Checkpoint base = random_checkpoint(40);
  const Checkpoint chip = perturbed(base, 41, 0.3F);
  const Checkpoint instruct = perturbed(base, 42, 0.3F);
  const Checkpoint ta = merge_checkpoints(TaskArithmeticMerger(), chip,
                                          instruct, &base, opts(0.6));

  Checkpoint mean = base;
  for (const std::string& name : mean.names()) {
    mean.put(name, Tensor(base.at(name).shape()));
  }
  constexpr int kRuns = 400;
  for (int run = 0; run < kRuns; ++run) {
    MergeOptions o = opts(0.6);
    o.seed = 5000 + static_cast<std::uint64_t>(run);
    const Checkpoint sample =
        merge_checkpoints(DareMerger(), chip, instruct, &base, o);
    for (const std::string& name : mean.names()) {
      ops::axpy(1.0F / kRuns, sample.at(name).values(),
                mean.at(name).values());
    }
  }
  // Mean absolute deviation across all parameters shrinks as 1/sqrt(runs);
  // with 400 runs the expected value is ~0.01.
  double abs_sum = 0.0;
  std::int64_t count = 0;
  for (const std::string& name : mean.names()) {
    const auto a = mean.at(name).values();
    const auto b = ta.at(name).values();
    for (std::size_t i = 0; i < a.size(); ++i) {
      abs_sum += std::abs(static_cast<double>(a[i]) - b[i]);
    }
    count += mean.at(name).numel();
  }
  EXPECT_LT(abs_sum / static_cast<double>(count), 0.03);
}

// -- driver-level checks
// -----------------------------------------------------------------

TEST(MergeDriver, RejectsNonConformableInputs) {
  Checkpoint a;
  a.put("w", Tensor({2, 2}));
  Checkpoint b;
  b.put("w", Tensor({2, 3}));
  EXPECT_THROW(merge_checkpoints(LerpMerger(), a, b, nullptr, opts(0.5)),
               Error);
}

TEST(MergeDriver, RejectsOutOfRangeOptions) {
  const Checkpoint a = random_checkpoint(1);
  const Checkpoint b = random_checkpoint(2);
  EXPECT_THROW(merge_checkpoints(LerpMerger(), a, b, nullptr, opts(1.5)),
               Error);
  MergeOptions o = opts(0.5);
  o.density = 0.0;
  EXPECT_THROW(merge_checkpoints(LerpMerger(), a, b, nullptr, o), Error);
}

TEST(MergeDriver, TagsMergedConfigName) {
  const Checkpoint a = random_checkpoint(1);
  const Checkpoint b = random_checkpoint(2);
  const Checkpoint merged =
      merge_checkpoints(GeodesicMerger(), a, b, nullptr, opts(0.6));
  EXPECT_NE(merged.config().name.find("chipalign"), std::string::npos);
}

TEST(MergeDriver, LambdaOverridesApplyBySuffix) {
  Checkpoint chip;
  chip.put("model.embed", Tensor({2}, {1.0F, 1.0F}));
  chip.put("model.w", Tensor({2}, {1.0F, 1.0F}));
  Checkpoint instruct;
  instruct.put("model.embed", Tensor({2}, {0.0F, 0.0F}));
  instruct.put("model.w", Tensor({2}, {0.0F, 0.0F}));

  MergeOptions options = opts(1.0);          // global: pure chip
  options.lambda_overrides = {{"embed", 0.0}};  // embeddings: pure instruct
  const Checkpoint merged =
      merge_checkpoints(LerpMerger(), chip, instruct, nullptr, options);
  EXPECT_NEAR(merged.at("model.embed")[0], 0.0F, 1e-6);
  EXPECT_NEAR(merged.at("model.w")[0], 1.0F, 1e-6);
}

TEST(MergeDriver, LambdaOverrideFirstMatchWinsAndValidates) {
  MergeOptions options = opts(0.5);
  options.lambda_overrides = {{"w", 0.2}, {"model.w", 0.9}};
  EXPECT_NEAR(effective_lambda(options, "model.w"), 0.2, 1e-12);
  EXPECT_NEAR(effective_lambda(options, "other"), 0.5, 1e-12);

  options.lambda_overrides = {{"w", 2.0}};
  EXPECT_THROW(effective_lambda(options, "model.w"), Error);
}

TEST(Geodesic, LambdaOverrideChangesOnlyMatchedTensors) {
  const Checkpoint chip = random_checkpoint(60);
  const Checkpoint instruct = random_checkpoint(61);
  MergeOptions options = opts(0.6);
  options.lambda_overrides = {{"embed", 1.0}};
  const Checkpoint merged =
      merge_checkpoints(GeodesicMerger(), chip, instruct, nullptr, options);
  // embed at lambda=1 -> exactly the chip tensor.
  EXPECT_LT(ops::max_abs_diff(merged.at("embed"), chip.at("embed")), 2e-5);
  // the rest at lambda=0.6 -> differs from both endpoints.
  EXPECT_GT(ops::max_abs_diff(merged.at("layer.0.w"), chip.at("layer.0.w")),
            1e-3);
}

// -- geometry diagnostics
// --------------------------------------------------------------------

TEST(Geometry, OrthogonalTensorsHaveRightAngle) {
  Checkpoint a;
  a.put("w", Tensor({2}, {1, 0}));
  Checkpoint b;
  b.put("w", Tensor({2}, {0, 1}));
  const auto report = analyze_geometry(a, b, nullptr, 0.5);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_NEAR(report[0].theta, M_PI / 2.0, 1e-4);
  EXPECT_GT(report[0].slerp_lerp_gap, 0.1);  // chord differs a lot at 90 deg
}

TEST(Geometry, ParallelTensorsHaveZeroGap) {
  Checkpoint a;
  a.put("w", Tensor({2}, {1, 1}));
  Checkpoint b;
  b.put("w", Tensor({2}, {2, 2}));
  const auto report = analyze_geometry(a, b, nullptr, 0.5);
  EXPECT_NEAR(report[0].theta, 0.0, 1e-3);
  EXPECT_NEAR(report[0].slerp_lerp_gap, 0.0, 1e-3);
}

TEST(Geometry, TaskVectorCosineWithBase) {
  Checkpoint base;
  base.put("w", Tensor({2}, {1, 1}));
  Checkpoint a;
  a.put("w", Tensor({2}, {2, 1}));  // tau = (1, 0)
  Checkpoint b;
  b.put("w", Tensor({2}, {1, 2}));  // tau = (0, 1)
  const auto report = analyze_geometry(a, b, &base, 0.5);
  EXPECT_NEAR(report[0].tv_cosine, 0.0, 1e-6);
}

TEST(Geometry, SummaryAggregates) {
  const Checkpoint a = random_checkpoint(50);
  const Checkpoint b = random_checkpoint(51);
  const auto report = analyze_geometry(a, b, nullptr, 0.6);
  const GeometrySummary summary = summarize_geometry(report);
  EXPECT_GT(summary.mean_theta, 0.0);
  EXPECT_GE(summary.max_theta, summary.mean_theta);
}

}  // namespace
}  // namespace chipalign
