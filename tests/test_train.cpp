// Tests for the training substrate: loss, AdamW, LR schedule, LoRA, trainer.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor_ops.hpp"
#include "train/adamw.hpp"
#include "train/loss.hpp"
#include "train/lora.hpp"
#include "train/trainer.hpp"
#include "util/error.hpp"

namespace chipalign {
namespace {

ModelConfig micro_config() {
  ModelConfig config;
  config.name = "micro";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 16;
  config.n_layers = 2;
  config.n_heads = 2;
  config.n_kv_heads = 2;
  config.d_ff = 24;
  config.max_seq_len = 64;
  config.validate();
  return config;
}

TEST(Loss, UniformLogitsGiveLogVocab) {
  const std::int64_t vocab = 7;
  Tensor logits({3, vocab});  // all zeros -> uniform distribution
  const std::vector<TokenId> tokens = {1, 2, 3};
  const std::vector<float> mask = {0.0F, 1.0F, 1.0F};
  const LossResult result = cross_entropy_next_token(logits, tokens, mask);
  EXPECT_NEAR(result.loss, std::log(static_cast<double>(vocab)), 1e-6);
  EXPECT_DOUBLE_EQ(result.target_weight, 2.0);
}

TEST(Loss, PerfectPredictionHasNearZeroLoss) {
  Tensor logits({2, 5});
  // Position 0 predicts token 3 (the target tokens[1]).
  logits.at2(0, 3) = 50.0F;
  const std::vector<TokenId> tokens = {0, 3};
  const std::vector<float> mask = {0.0F, 1.0F};
  const LossResult result = cross_entropy_next_token(logits, tokens, mask);
  EXPECT_LT(result.loss, 1e-6);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Rng rng(1);
  Tensor logits = Tensor::randn({3, 6}, rng);
  const std::vector<TokenId> tokens = {1, 2, 3};
  const std::vector<float> mask = {0.0F, 1.0F, 1.0F};
  const LossResult result = cross_entropy_next_token(logits, tokens, mask);
  for (std::int64_t t = 0; t + 1 < 3; ++t) {
    double row_sum = 0.0;
    for (float v : result.dlogits.row(t)) row_sum += v;
    EXPECT_NEAR(row_sum, 0.0, 1e-6) << "row " << t;
  }
}

TEST(Loss, MaskedPositionsGetNoGradient) {
  Rng rng(2);
  Tensor logits = Tensor::randn({3, 6}, rng);
  const std::vector<TokenId> tokens = {1, 2, 3};
  const std::vector<float> mask = {0.0F, 0.0F, 1.0F};  // only last target
  const LossResult result = cross_entropy_next_token(logits, tokens, mask);
  for (float v : result.dlogits.row(0)) EXPECT_EQ(v, 0.0F);
}

TEST(Loss, ZeroMaskMeansZeroLoss) {
  Tensor logits({2, 4});
  const LossResult result =
      cross_entropy_next_token(logits, {0, 1}, {0.0F, 0.0F});
  EXPECT_EQ(result.loss, 0.0);
  EXPECT_EQ(result.target_weight, 0.0);
}

TEST(AdamW, MinimizesQuadratic) {
  // One parameter, loss = 0.5 * ||x - target||^2, grad = x - target.
  Parameter p("x", Tensor({4}, {5.0F, -3.0F, 2.0F, 0.0F}));
  const Tensor target({4}, {1.0F, 1.0F, 1.0F, 1.0F});

  AdamWConfig config;
  config.lr = 0.05;
  config.weight_decay = 0.0;
  config.clip_norm = 0.0;
  AdamW optimizer({&p}, config);

  for (int step = 0; step < 400; ++step) {
    p.zero_grad();
    for (std::int64_t i = 0; i < 4; ++i) {
      p.grad[i] = p.value[i] - target[i];
    }
    optimizer.step();
  }
  EXPECT_LT(ops::max_abs_diff(p.value, target), 0.05);
}

TEST(AdamW, ClipBoundsGradientNorm) {
  Parameter p("x", Tensor({2}, {0.0F, 0.0F}));
  AdamWConfig config;
  config.clip_norm = 1.0;
  AdamW optimizer({&p}, config);
  p.grad[0] = 300.0F;
  p.grad[1] = 400.0F;  // norm 500
  const double reported = optimizer.step();
  EXPECT_NEAR(reported, 500.0, 1e-3);  // pre-clip norm is reported
}

TEST(AdamW, WeightDecayShrinksWeightsWithZeroGrad) {
  Parameter p("x", Tensor({1}, {10.0F}));
  AdamWConfig config;
  config.lr = 0.1;
  config.weight_decay = 0.5;
  config.clip_norm = 0.0;
  AdamW optimizer({&p}, config);
  optimizer.step();  // grad 0: update = wd * w = 5 -> w -= lr * 5
  EXPECT_NEAR(p.value[0], 10.0F - 0.1F * 5.0F, 1e-4);
}

TEST(CosineLr, WarmupThenDecay) {
  const double peak = 1.0;
  EXPECT_NEAR(cosine_lr(0, 10, 100, peak), 0.1, 1e-9);   // warmup ramp
  EXPECT_NEAR(cosine_lr(9, 10, 100, peak), 1.0, 1e-9);   // warmup end
  EXPECT_NEAR(cosine_lr(10, 10, 100, peak), 1.0, 1e-6);  // cosine start
  EXPECT_NEAR(cosine_lr(100, 10, 100, peak), 0.1, 1e-6); // min ratio floor
  // Midpoint of decay: 0.1 + 0.9 * 0.5 = 0.55
  EXPECT_NEAR(cosine_lr(55, 10, 100, peak), 0.55, 1e-6);
}

TEST(Examples, LmExampleMasksBosOnly) {
  const TrainExample example = make_lm_example("ab", 32);
  ASSERT_EQ(example.tokens.size(), 4u);  // bos a b eos
  EXPECT_EQ(example.target_mask[0], 0.0F);
  EXPECT_EQ(example.target_mask[1], 1.0F);
  EXPECT_EQ(example.target_mask[3], 1.0F);
}

TEST(Examples, QaExampleMasksPrompt) {
  const TrainExample example = make_qa_example("q: x\nout: ", "yes", 64);
  // Prompt tokens weight 0, answer + eos weight 1.
  std::size_t weighted = 0;
  for (float w : example.target_mask) weighted += w > 0.0F ? 1 : 0;
  EXPECT_EQ(weighted, 4u);  // 'y' 'e' 's' + eos
  EXPECT_EQ(example.target_mask[0], 0.0F);
}

TEST(Examples, TruncationRespectsMaxLen) {
  const TrainExample example = make_lm_example(std::string(100, 'a'), 16);
  EXPECT_EQ(example.tokens.size(), 16u);
  EXPECT_EQ(example.target_mask.size(), 16u);
}

TEST(Lora, BZeroInitKeepsModelUnchanged) {
  Rng rng(3);
  TransformerModel model(micro_config(), rng);
  const Checkpoint before = model.to_checkpoint();

  LoraConfig config;
  config.rank = 2;
  LoraAdapterSet adapters(model, config);
  adapters.materialize();

  const Checkpoint after = model.to_checkpoint();
  for (const std::string& name : before.names()) {
    EXPECT_LT(ops::max_abs_diff(before.at(name), after.at(name)), 1e-7) << name;
  }
}

TEST(Lora, MatchesFullWeightGradientProjection) {
  Rng rng(4);
  TransformerModel model(micro_config(), rng);
  LoraConfig config;
  config.rank = 2;
  config.target_suffixes = {"self_attn.q_proj.weight"};
  LoraAdapterSet adapters(model, config);
  EXPECT_EQ(adapters.adapter_count(), 2u);  // one per layer

  adapters.materialize();
  model.zero_grad();
  adapters.zero_grad();

  const TrainExample example = make_qa_example("q: a\nout: ", "b", 32);
  const Tensor logits = model.forward(example.tokens);
  const LossResult loss =
      cross_entropy_next_token(logits, example.tokens, example.target_mask);
  model.backward(loss.dlogits);
  adapters.accumulate_adapter_grads();

  // Finite-difference check on one A entry.
  auto trainable = adapters.trainable_parameters();
  Parameter* a_param = trainable[0];
  const std::int64_t idx = 3;
  const double analytic = a_param->grad[idx];

  auto loss_with = [&](float delta) {
    const float saved = a_param->value[idx];
    a_param->value[idx] = saved + delta;
    adapters.materialize();
    const Tensor l = model.forward(example.tokens);
    const LossResult r =
        cross_entropy_next_token(l, example.tokens, example.target_mask);
    model.discard_forward();
    a_param->value[idx] = saved;
    adapters.materialize();
    return r.loss;
  };
  constexpr float kH = 1e-2F;
  const double numeric = (loss_with(kH) - loss_with(-kH)) / (2.0 * kH);
  EXPECT_NEAR(analytic, numeric, std::max(2e-3, 5e-2 * std::abs(analytic)));
}

TEST(Lora, RestoreBaseUndoesAdaptation) {
  Rng rng(5);
  TransformerModel model(micro_config(), rng);
  const Checkpoint before = model.to_checkpoint();

  LoraConfig config;
  config.rank = 2;
  LoraAdapterSet adapters(model, config);
  // Poke the adapters so W_eff != W_base.
  for (Parameter* p : adapters.trainable_parameters()) {
    p->value.fill(0.05F);
  }
  adapters.materialize();
  const Checkpoint changed = model.to_checkpoint();
  EXPECT_GT(ops::max_abs_diff(
                before.at("model.layers.0.self_attn.q_proj.weight"),
                changed.at("model.layers.0.self_attn.q_proj.weight")),
            1e-4);

  adapters.restore_base();
  const Checkpoint restored = model.to_checkpoint();
  for (const std::string& name : before.names()) {
    EXPECT_LT(ops::max_abs_diff(before.at(name), restored.at(name)), 1e-7);
  }
}

TEST(Lora, RejectsUnmatchedTargets) {
  Rng rng(6);
  TransformerModel model(micro_config(), rng);
  LoraConfig config;
  config.target_suffixes = {"no.such.weight"};
  EXPECT_THROW(LoraAdapterSet(model, config), Error);
}

TEST(Trainer, FullTrainingReducesLoss) {
  Rng rng(7);
  TransformerModel model(micro_config(), rng);

  // Tiny memorization task: one QA pair repeated.
  std::vector<TrainExample> dataset;
  for (int i = 0; i < 4; ++i) {
    dataset.push_back(make_qa_example("q: ping\nout: ", "pong", 64));
  }

  TrainConfig config;
  config.steps = 60;
  config.batch_size = 2;
  config.peak_lr = 5e-3;
  config.warmup_steps = 5;
  const TrainStats stats = train_full(model, dataset, config);
  EXPECT_LT(stats.final_loss, stats.first_loss * 0.5);
  EXPECT_LT(evaluate_loss(model, dataset), stats.first_loss);
}

TEST(Trainer, LoraTrainingReducesLoss) {
  // LoRA adapts a *pretrained* model (a random LM head cannot be reshaped
  // through low-rank updates alone), so first full-train on one mapping,
  // then LoRA-train the reverse mapping.
  Rng rng(8);
  TransformerModel model(micro_config(), rng);
  {
    std::vector<TrainExample> warmup;
    for (int i = 0; i < 4; ++i) {
      warmup.push_back(make_qa_example("q: ping\nout: ", "pong", 64));
    }
    TrainConfig config;
    config.steps = 80;
    config.batch_size = 2;
    config.peak_lr = 5e-3;
    config.warmup_steps = 5;
    train_full(model, warmup, config);
  }

  LoraConfig lora_config;
  lora_config.rank = 4;
  lora_config.target_suffixes = {
      "self_attn.q_proj.weight", "self_attn.v_proj.weight",
      "mlp.gate_proj.weight",    "mlp.down_proj.weight"};
  LoraAdapterSet adapters(model, lora_config);

  std::vector<TrainExample> dataset;
  for (int i = 0; i < 4; ++i) {
    dataset.push_back(make_qa_example("q: pong\nout: ", "ping", 64));
  }

  TrainConfig config;
  config.steps = 150;
  config.batch_size = 2;
  config.peak_lr = 5e-3;
  config.warmup_steps = 10;
  const TrainStats stats = train_lora(model, adapters, dataset, config);
  EXPECT_LT(stats.final_loss, stats.first_loss * 0.7);
}

TEST(Trainer, RejectsEmptyDataset) {
  Rng rng(9);
  TransformerModel model(micro_config(), rng);
  EXPECT_THROW(train_full(model, {}, TrainConfig{}), Error);
}

}  // namespace
}  // namespace chipalign
