// Request-lifecycle tests for the serving engine (src/serve): deadlines,
// cancellation, bounded-queue load shedding, graceful drain / hard stop,
// the stalled-driver watchdog, and a serve-path chaos soak that hammers a
// live server with concurrent submit/cancel/deadline/drain storms while
// the serve.* failpoints are armed.
//
// Suite names (ServeLifecycle, ServeDrain, ServeChaos) are stable so
// sanitizer CI can select them with ctest -R; the chaos suite is the
// serve-chaos leg of the crash-soak job.
//
// The invariants pinned here (DESIGN.md §4k):
//   * every accepted session terminalizes with an explicit status — no
//     silent drops, no hung wait_result;
//   * a completed session's output is bitwise what generate() produces,
//     no matter which batch-mates were cancelled/expired around it;
//   * a non-completed session's output is a prefix of that reference
//     (early exit never corrupts what was already emitted);
//   * after drain, residents, KV bytes, and prefix-cache pins are zero
//     and the ServerStats lifecycle counters balance.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "nn/infer.hpp"
#include "serve/server.hpp"
#include "text/tokenizer.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace chipalign {
namespace {

/// Tokenizer-vocab shape (prompts are real text), same as test_serve.cpp.
ModelConfig text_config() {
  ModelConfig config;
  config.name = "serve-lifecycle";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 16;
  config.n_layers = 1;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 24;
  config.max_seq_len = 256;
  config.validate();
  return config;
}

std::vector<std::string> lifecycle_prompts() {
  return {
      "do: answer routing questions\nq: what is wns?\nout: ",
      "do: answer routing questions\nq: what is tns?\nout: ",
      "do: answer routing questions\nq: define skew\nout: ",
      "do: answer routing questions\nq: define slack\nout: ",
      "fix setup violations now",
      "fix hold violations now",
  };
}

/// Injectable test clock: deadlines and watchdog stalls advance only when
/// the test says so, making expiry deterministic. Thread-safe (the driver,
/// submitters, and the watchdog all read it).
struct FakeClock {
  std::shared_ptr<std::atomic<std::int64_t>> t =
      std::make_shared<std::atomic<std::int64_t>>(0);
  std::function<std::int64_t()> fn() const {
    auto p = t;
    return [p] { return p->load(); };
  }
  void advance(std::int64_t ms) { t->fetch_add(ms); }
};

/// The char tokenizer decodes token-by-token, so a token-prefix decodes to
/// a text-prefix: early-exited sessions must satisfy this against their
/// generate() reference.
bool is_text_prefix(const std::string& full, const std::string& part) {
  return part.size() <= full.size() &&
         full.compare(0, part.size(), part) == 0;
}

/// submitted must equal the sum of the terminal buckets plus in-flight
/// gauges — no session ever vanishes from the accounting.
void expect_counters_balance(const ServerStats& stats) {
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.cancelled + stats.expired + stats.shed +
                stats.shutdown_terminated + stats.failed + stats.waiting +
                stats.resident);
}

// ---- ServeLifecycle ------------------------------------------------------

TEST(ServeLifecycle, WaitResultUnknownIdFailsFast) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  Server server(model, ServeConfig{});
  EXPECT_THROW(server.wait_result(1), UnknownSessionError);
  EXPECT_THROW(server.wait_result(0), UnknownSessionError);
  EXPECT_THROW(server.wait_result(-5), UnknownSessionError);
  EXPECT_THROW(server.wait_result_for(42, 100), UnknownSessionError);
  EXPECT_THROW(server.cancel(7), UnknownSessionError);

  // Issued ids keep working, and the *next* unissued one still throws.
  GenerateOptions options;
  options.max_new_tokens = 4;
  const SessionId id =
      server.submit(server.text_request(lifecycle_prompts()[0], options));
  EXPECT_THROW(server.wait_result(id + 1), UnknownSessionError);
  server.run();
  EXPECT_EQ(server.wait_result(id).status, SessionStatus::kCompleted);
}

TEST(ServeLifecycle, WaitResultForTimesOutWithoutDriver) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  Server server(model, ServeConfig{});
  GenerateOptions options;
  options.max_new_tokens = 4;
  const SessionId id =
      server.submit(server.text_request(lifecycle_prompts()[0], options));
  EXPECT_FALSE(server.wait_result_for(id, 0).has_value());
  EXPECT_FALSE(server.wait_result_for(id, 20).has_value());
  server.run();
  const auto result = server.wait_result_for(id, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, SessionStatus::kCompleted);
}

TEST(ServeLifecycle, UnservableSubmitsThrowTypedErrorsAndAreCounted) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  Server server(model, ServeConfig{});
  GenerateOptions options;

  Request empty;  // empty prompt
  EXPECT_THROW(server.submit(std::move(empty)), UnservableError);

  Request negative = server.text_request(lifecycle_prompts()[0], options);
  negative.deadline_ms = -1;
  EXPECT_THROW(server.submit(std::move(negative)), UnservableError);

  Request no_budget = server.text_request(lifecycle_prompts()[0], options);
  no_budget.max_new_tokens = 0;
  EXPECT_THROW(server.submit(std::move(no_budget)), UnservableError);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_unservable, 3);
  EXPECT_EQ(stats.submitted, 0);
}

TEST(ServeLifecycle, CancelQueuedSessionTerminalizesImmediately) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  Server server(model, ServeConfig{});
  GenerateOptions options;
  options.max_new_tokens = 6;
  const SessionId keep =
      server.submit(server.text_request(lifecycle_prompts()[0], options));
  const SessionId gone =
      server.submit(server.text_request(lifecycle_prompts()[1], options));

  // No driver is running: the cancel itself must deliver the result.
  EXPECT_TRUE(server.cancel(gone));
  const auto result = server.wait_result_for(gone, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, SessionStatus::kCancelled);
  EXPECT_TRUE(result->tokens.empty());
  EXPECT_FALSE(result->error.empty());
  EXPECT_FALSE(server.cancel(gone));  // already terminal

  server.run();
  EXPECT_EQ(server.wait_result(keep).status, SessionStatus::kCompleted);
  expect_counters_balance(server.stats());
}

TEST(ServeLifecycle, CancelResidentIsEffectiveWithinOneStep) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  Server server(model, ServeConfig{});
  GenerateOptions options;
  options.max_new_tokens = 64;
  const SessionId id =
      server.submit(server.text_request(lifecycle_prompts()[0], options));
  ASSERT_TRUE(server.step());  // admitted, prefilling
  EXPECT_TRUE(server.cancel(id));
  server.step();  // the very next step terminalizes it
  const auto result = server.wait_result_for(id, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, SessionStatus::kCancelled);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.resident, 0);
  EXPECT_EQ(stats.resident_kv_bytes, 0u);
  EXPECT_EQ(stats.cancelled, 1);
}

TEST(ServeLifecycle, CancelledSessionNeverCorruptsBatchMates) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  const auto prompts = lifecycle_prompts();
  GenerateOptions options;
  options.max_new_tokens = 12;

  std::vector<std::string> expected;
  for (const auto& prompt : prompts) {
    expected.push_back(generate(model, prompt, options, false));
  }

  ServeConfig serve;
  serve.max_batch = static_cast<std::int64_t>(prompts.size());
  serve.prefix_cache_bytes = std::size_t{1} << 22;
  Server server(model, serve);
  std::vector<SessionId> ids;
  for (const auto& prompt : prompts) {
    ids.push_back(server.submit(server.text_request(prompt, options)));
  }
  // Let everyone decode a little, then cancel one mid-batch.
  for (int i = 0; i < 3; ++i) server.step();
  EXPECT_TRUE(server.cancel(ids[2]));
  server.run();

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const SessionResult result = server.wait_result(ids[i]);
    if (i == 2) {
      EXPECT_EQ(result.status, SessionStatus::kCancelled);
      EXPECT_TRUE(is_text_prefix(expected[i], result.text));
    } else {
      EXPECT_EQ(result.status, SessionStatus::kCompleted);
      EXPECT_EQ(result.text, expected[i]);  // bitwise == generate()
    }
  }
  expect_counters_balance(server.stats());
}

TEST(ServeLifecycle, QueueDeadlineExpiresBeforeAdmission) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  FakeClock clock;
  ServeConfig serve;
  serve.max_sessions = 1;
  serve.now_ms = clock.fn();
  Server server(model, serve);
  GenerateOptions options;
  options.max_new_tokens = 24;

  const std::string resident_prompt = lifecycle_prompts()[0];
  const std::string expected = generate(model, resident_prompt, options,
                                        false);
  const SessionId resident =
      server.submit(server.text_request(resident_prompt, options));
  Request queued = server.text_request(lifecycle_prompts()[1], options);
  queued.max_queue_ms = 50;
  const SessionId waiting = server.submit(std::move(queued));

  for (int i = 0; i < 3; ++i) server.step();  // resident decodes; queue waits
  EXPECT_FALSE(server.wait_result_for(waiting, 0).has_value());
  clock.advance(100);
  server.step();  // queue sweep expires it at the next boundary
  const auto result = server.wait_result_for(waiting, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, SessionStatus::kDeadlineExceeded);
  EXPECT_TRUE(result->tokens.empty());

  server.run();  // the resident is unaffected
  EXPECT_EQ(server.wait_result(resident).text, expected);
  EXPECT_EQ(server.stats().expired, 1);
}

TEST(ServeLifecycle, DeadlineEvictsResidentMidDecodeAtTokenGranularity) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  FakeClock clock;
  ServeConfig serve;
  serve.now_ms = clock.fn();
  serve.prefix_cache_bytes = std::size_t{1} << 22;
  Server server(model, serve);
  GenerateOptions options;
  options.max_new_tokens = 64;
  const std::string prompt = lifecycle_prompts()[0];
  const std::string expected = generate(model, prompt, options, false);

  Request request = server.text_request(prompt, options);
  request.deadline_ms = 10;
  const SessionId id = server.submit(std::move(request));
  std::int64_t steps = 0;
  while (server.step()) {
    // Let it prefill and emit a few tokens, then expire it mid-decode.
    if (++steps == static_cast<std::int64_t>(prompt.size()) + 4) {
      clock.advance(100);
    }
    ASSERT_LT(steps, 1000);
  }
  const auto result = server.wait_result_for(id, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, SessionStatus::kDeadlineExceeded);
  EXPECT_FALSE(result->tokens.empty());  // partial output survives
  EXPECT_TRUE(is_text_prefix(expected, result->text));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.expired, 1);
  EXPECT_EQ(stats.resident, 0);
  EXPECT_EQ(stats.resident_kv_bytes, 0u);  // KV released on eviction
  EXPECT_EQ(stats.cache.pinned_nodes, 0);  // prefix pins released too
}

TEST(ServeLifecycle, BoundedQueueRejectsExplicitlyWhenFull) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  ServeConfig serve;
  serve.max_queue = 3;
  Server server(model, serve);
  GenerateOptions options;
  options.max_new_tokens = 4;

  std::vector<SessionId> accepted;
  int rejected = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      accepted.push_back(server.submit(server.text_request(
          lifecycle_prompts()[static_cast<std::size_t>(i) %
                              lifecycle_prompts().size()],
          options)));
    } catch (const QueueFullError&) {
      ++rejected;
    }
  }
  // No driver ran, so exactly max_queue fit; the rest were rejected
  // explicitly — never silently dropped.
  EXPECT_EQ(accepted.size(), 3u);
  EXPECT_EQ(rejected, 7);
  EXPECT_EQ(server.stats().rejected_full, 7);
  EXPECT_EQ(server.stats().submitted, 3);

  server.run();
  for (const SessionId id : accepted) {
    EXPECT_EQ(server.wait_result(id).status, SessionStatus::kCompleted);
  }
  expect_counters_balance(server.stats());
}

TEST(ServeLifecycle, ShedOldestOnFullDeliversShedStatusToEveryVictim) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  ServeConfig serve;
  serve.max_queue = 2;
  serve.shed_oldest_on_full = true;
  Server server(model, serve);
  GenerateOptions options;
  options.max_new_tokens = 4;

  std::vector<SessionId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(server.submit(server.text_request(
        lifecycle_prompts()[static_cast<std::size_t>(i) %
                            lifecycle_prompts().size()],
        options)));
  }
  // Queue bound 2, no driver: the four oldest were shed to admit newer
  // work, each with an explicit terminal result.
  for (int i = 0; i < 4; ++i) {
    const auto result = server.wait_result_for(ids[static_cast<std::size_t>(
                                                   i)],
                                               0);
    ASSERT_TRUE(result.has_value()) << "victim " << i;
    EXPECT_EQ(result->status, SessionStatus::kShedOverload);
  }
  server.run();
  for (int i = 4; i < 6; ++i) {
    EXPECT_EQ(server.wait_result(ids[static_cast<std::size_t>(i)]).status,
              SessionStatus::kCompleted);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, 4);
  EXPECT_EQ(stats.completed, 2);
  expect_counters_balance(stats);
}

TEST(ServeLifecycle, FifoPreservedAcrossCancelInterleavings) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  ServeConfig serve;
  serve.max_sessions = 1;  // strict serial admission: completion == FIFO
  serve.max_batch = 1;
  Server server(model, serve);
  GenerateOptions options;
  options.max_new_tokens = 4;

  std::vector<SessionId> ids;
  std::vector<SessionId> first_token_order;
  std::mutex order_mutex;
  for (int i = 0; i < 6; ++i) {
    Request request = server.text_request(
        lifecycle_prompts()[static_cast<std::size_t>(i)], options);
    request.on_token = [&](SessionId sid, TokenId) {
      std::lock_guard<std::mutex> lock(order_mutex);
      if (first_token_order.empty() || first_token_order.back() != sid) {
        first_token_order.push_back(sid);
      }
    };
    ids.push_back(server.submit(std::move(request)));
  }
  EXPECT_TRUE(server.cancel(ids[1]));
  EXPECT_TRUE(server.cancel(ids[4]));
  server.run();

  // Survivors stream strictly in submission order (max_sessions == 1 makes
  // interleaving impossible, so first-token order is completion order).
  const std::vector<SessionId> expected_order = {ids[0], ids[2], ids[3],
                                                 ids[5]};
  EXPECT_EQ(first_token_order, expected_order);
  for (const SessionId id : {ids[1], ids[4]}) {
    EXPECT_EQ(server.wait_result(id).status, SessionStatus::kCancelled);
  }
  expect_counters_balance(server.stats());
}

TEST(ServeLifecycle, WatchdogDetectsStalledDriverLoop) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  FakeClock clock;
  ServeConfig serve;
  serve.now_ms = clock.fn();
  Server server(model, serve);
  GenerateOptions options;
  options.max_new_tokens = 4;
  const SessionId id =
      server.submit(server.text_request(lifecycle_prompts()[0], options));

  std::atomic<int> alarms{0};
  server.start_watchdog(50, [&](std::int64_t stalled) {
    EXPECT_GE(stalled, 50);
    alarms.fetch_add(1);
  });
  // Work is pending but no driver is stepping: a wedged loop. Advance the
  // deadline clock past the stall threshold and let the poller notice.
  clock.advance(1000);
  for (int i = 0; i < 500 && alarms.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(alarms.load(), 1);
  EXPECT_GE(server.stats().watchdog_alarms, 1);
  server.stop_watchdog();

  server.run();  // driver arrives; the stalled work still completes
  EXPECT_EQ(server.wait_result(id).status, SessionStatus::kCompleted);
}

// ---- ServeDrain ----------------------------------------------------------

TEST(ServeDrain, DrainWithoutDriverFlushesQueueAndClosesAdmission) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  Server server(model, ServeConfig{});
  GenerateOptions options;
  options.max_new_tokens = 4;
  const SessionId id =
      server.submit(server.text_request(lifecycle_prompts()[0], options));

  server.drain();
  EXPECT_TRUE(server.draining());
  server.drain();  // idempotent
  const auto result = server.wait_result_for(id, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, SessionStatus::kShuttingDown);

  EXPECT_THROW(
      server.submit(server.text_request(lifecycle_prompts()[1], options)),
      ShuttingDownError);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_shutdown, 1);
  EXPECT_EQ(stats.shutdown_terminated, 1);
  EXPECT_EQ(stats.waiting, 0);
  expect_counters_balance(stats);
}

TEST(ServeDrain, DrainFinishesResidentsAndShutsDownQueued) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  const auto prompts = lifecycle_prompts();
  GenerateOptions options;
  options.max_new_tokens = 16;
  std::vector<std::string> expected;
  for (const auto& prompt : prompts) {
    expected.push_back(generate(model, prompt, options, false));
  }

  ServeConfig serve;
  serve.max_sessions = 2;
  serve.max_batch = 2;
  serve.prefix_cache_bytes = std::size_t{1} << 22;
  Server server(model, serve);

  std::atomic<bool> any_token{false};
  std::vector<SessionId> ids;
  for (const auto& prompt : prompts) {
    Request request = server.text_request(prompt, options);
    request.on_token = [&](SessionId, TokenId) { any_token.store(true); };
    ids.push_back(server.submit(std::move(request)));
  }
  std::thread driver([&] { server.serve(); });
  while (!any_token.load()) std::this_thread::yield();
  server.drain();
  driver.join();  // serve() returns once everything terminalized

  // Residents at drain time ran to completion (bitwise == generate());
  // queued sessions got kShuttingDown. FIFO admission means the completed
  // set is a prefix of submission order.
  bool seen_shutdown = false;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto result = server.wait_result_for(ids[i], 0);
    ASSERT_TRUE(result.has_value()) << "session " << i << " never finished";
    if (result->status == SessionStatus::kCompleted) {
      EXPECT_FALSE(seen_shutdown)
          << "completed session " << i << " after a shutdown one — not FIFO";
      EXPECT_EQ(result->text, expected[i]);
    } else {
      EXPECT_EQ(result->status, SessionStatus::kShuttingDown);
      seen_shutdown = true;
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.completed, 2);  // the residents at drain time
  EXPECT_EQ(stats.waiting, 0);
  EXPECT_EQ(stats.resident, 0);
  EXPECT_EQ(stats.resident_kv_bytes, 0u);
  EXPECT_EQ(stats.cache.pinned_nodes, 0);
  expect_counters_balance(stats);
}

TEST(ServeDrain, HardStopEvictsResidentsWithPartialOutput) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  const auto prompts = lifecycle_prompts();
  GenerateOptions options;
  options.max_new_tokens = 120;  // long enough that a hard stop lands first
  std::vector<std::string> expected;
  for (const auto& prompt : prompts) {
    expected.push_back(generate(model, prompt, options, false));
  }

  ServeConfig serve;
  serve.max_sessions = 3;
  Server server(model, serve);
  std::atomic<bool> any_token{false};
  std::vector<SessionId> ids;
  for (std::size_t i = 0; i < 3; ++i) {
    Request request = server.text_request(prompts[i], options);
    request.on_token = [&](SessionId, TokenId) { any_token.store(true); };
    ids.push_back(server.submit(std::move(request)));
  }
  std::thread driver([&] { server.serve(); });
  while (!any_token.load()) std::this_thread::yield();
  server.shutdown_now();
  driver.join();

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto result = server.wait_result_for(ids[i], 0);
    ASSERT_TRUE(result.has_value());
    // A session may have completed in the race before the hard stop; either
    // way its output is a clean prefix of the reference.
    EXPECT_TRUE(result->status == SessionStatus::kShuttingDown ||
                result->status == SessionStatus::kCompleted);
    EXPECT_TRUE(is_text_prefix(expected[i], result->text));
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.resident, 0);
  EXPECT_EQ(stats.resident_kv_bytes, 0u);
  expect_counters_balance(stats);
}

TEST(ServeDrain, ServeIdlesUntilWorkArrivesAndReturnsOnDrain) {
  Rng rng(3);
  const TransformerModel model(text_config(), rng);
  Server server(model, ServeConfig{});
  GenerateOptions options;
  options.max_new_tokens = 4;

  std::thread driver([&] { server.serve(); });
  // The driver is idle-parked; work submitted later must still be served.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const SessionId a =
      server.submit(server.text_request(lifecycle_prompts()[0], options));
  EXPECT_EQ(server.wait_result(a).status, SessionStatus::kCompleted);
  const SessionId b =
      server.submit(server.text_request(lifecycle_prompts()[1], options));
  EXPECT_EQ(server.wait_result(b).status, SessionStatus::kCompleted);
  server.drain();
  driver.join();
  expect_counters_balance(server.stats());
}

// ---- ServeChaos ----------------------------------------------------------

/// One storm: concurrent submitters with mixed deadlines/cancels/streaming
/// callbacks against a live serve() driver, with every serve.* failpoint
/// armed on deterministic windows, finished by a drain. Asserts the full
/// invariant set regardless of how the race resolved.
void run_chaos_storm(bool speculative) {
  Rng rng(7);
  const TransformerModel model(text_config(), rng);
  const auto prompts = lifecycle_prompts();
  GenerateOptions options;
  options.max_new_tokens = 8;
  std::vector<std::string> expected;
  for (const auto& prompt : prompts) {
    expected.push_back(generate(model, prompt, options, false));
  }

  ServeConfig serve;
  serve.max_sessions = 4;
  serve.max_batch = 4;
  serve.max_queue = 16;
  serve.prefix_cache_bytes = std::size_t{1} << 22;
  serve.speculative = speculative;
  Server server(model, serve);

  failpoint::disarm_all();
  failpoint::arm_from_text(
      "serve.step=transient@3x4; serve.admit=error@6x3; "
      "serve.prefix_acquire=error@2x3; serve.callback=error@11x2");
  server.start_watchdog(2000);

  std::thread driver([&] { server.serve(); });
  std::atomic<bool> storm_done{false};
  std::thread poller([&] {
    // Concurrent observability reads are part of the storm.
    while (!storm_done.load()) {
      (void)server.stats();
      (void)server.busy();
      std::this_thread::yield();
    }
  });

  constexpr int kThreads = 3;
  constexpr int kPerThread = 12;
  std::vector<std::vector<SessionId>> ids(kThreads);
  std::vector<std::vector<std::size_t>> prompt_of(kThreads);
  std::atomic<std::int64_t> streamed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937 gen(static_cast<unsigned>(1234 + t));
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t p =
            static_cast<std::size_t>(t * kPerThread + i) % prompts.size();
        Request request = server.text_request(prompts[p], options);
        switch (gen() % 5) {
          case 0: request.deadline_ms = 1; break;
          case 1: request.max_queue_ms = 1; break;
          case 2:
            request.on_token = [&](SessionId, TokenId) {
              streamed.fetch_add(1);
            };
            break;
          default: break;
        }
        const bool cancel_after = gen() % 4 == 0;
        try {
          const SessionId id = server.submit(std::move(request));
          ids[static_cast<std::size_t>(t)].push_back(id);
          prompt_of[static_cast<std::size_t>(t)].push_back(p);
          if (cancel_after) server.cancel(id);
        } catch (const QueueFullError&) {
          // Explicit rejection is a valid outcome under overload.
        }
        if (i % 4 == 3) std::this_thread::yield();
      }
    });
  }
  for (auto& client : clients) client.join();
  server.drain();
  driver.join();
  storm_done.store(true);
  poller.join();
  server.stop_watchdog();
  failpoint::disarm_all();

  // Every accepted session terminalized with an explicit status; completed
  // ones are bitwise generate(), everything else is a clean prefix.
  std::size_t accepted = 0;
  for (int t = 0; t < kThreads; ++t) {
    const auto& thread_ids = ids[static_cast<std::size_t>(t)];
    for (std::size_t j = 0; j < thread_ids.size(); ++j) {
      ++accepted;
      const auto result = server.wait_result_for(thread_ids[j], 1000);
      ASSERT_TRUE(result.has_value())
          << "session " << thread_ids[j] << " never terminalized";
      const std::string& reference =
          expected[prompt_of[static_cast<std::size_t>(t)][j]];
      if (result->status == SessionStatus::kCompleted) {
        EXPECT_EQ(result->text, reference)
            << "completed session " << thread_ids[j]
            << " diverged from generate()";
      } else {
        EXPECT_TRUE(is_text_prefix(reference, result->text))
            << "early-exited session " << thread_ids[j]
            << " emitted non-prefix output";
      }
    }
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::int64_t>(accepted));
  EXPECT_EQ(stats.waiting, 0);
  EXPECT_EQ(stats.resident, 0);
  EXPECT_EQ(stats.resident_kv_bytes, 0u);  // no leaked KV bytes
  EXPECT_EQ(stats.cache.pinned_nodes, 0);  // no leaked prefix pins
  EXPECT_LE(stats.cache.bytes,
            static_cast<std::int64_t>(serve.prefix_cache_bytes));
  expect_counters_balance(stats);
}

TEST(ServeChaos, ConcurrentStormWithFailpointsKeepsEveryInvariant) {
  run_chaos_storm(/*speculative=*/false);
}

TEST(ServeChaos, ConcurrentStormSpeculativeKeepsEveryInvariant) {
  run_chaos_storm(/*speculative=*/true);
}

}  // namespace
}  // namespace chipalign
