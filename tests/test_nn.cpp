// Tests for the transformer substrate: RoPE, forward/backward gradients
// (finite differences), KV-cache consistency, generation and scoring.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/infer.hpp"
#include "nn/rotary.hpp"
#include "nn/transformer.hpp"
#include "tensor/tensor_ops.hpp"
#include "train/loss.hpp"
#include "util/error.hpp"

namespace chipalign {
namespace {

ModelConfig micro_config() {
  ModelConfig config;
  config.name = "micro";
  config.vocab_size = 11;
  config.d_model = 8;
  config.n_layers = 2;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 12;
  config.max_seq_len = 16;
  config.validate();
  return config;
}

TEST(Rotary, ApplyInverseIsIdentity) {
  RotaryCache rope(8, 16, 10000.0);
  Rng rng(1);
  for (std::int64_t pos : {0, 3, 15}) {
    Tensor v = Tensor::randn({8}, rng);
    Tensor orig = v;
    rope.apply(v.values(), pos);
    rope.apply_inverse(v.values(), pos);
    EXPECT_LT(ops::max_abs_diff(v, orig), 1e-5) << "pos " << pos;
  }
}

TEST(Rotary, PreservesNorm) {
  RotaryCache rope(8, 16, 10000.0);
  Rng rng(2);
  Tensor v = Tensor::randn({8}, rng);
  const double before = ops::norm(v.values());
  rope.apply(v.values(), 7);
  EXPECT_NEAR(ops::norm(v.values()), before, 1e-5);
}

TEST(Rotary, PositionZeroIsIdentity) {
  RotaryCache rope(4, 8, 10000.0);
  Tensor v({4}, {1, 2, 3, 4});
  Tensor orig = v;
  rope.apply(v.values(), 0);
  EXPECT_LT(ops::max_abs_diff(v, orig), 1e-7);
}

TEST(Rotary, RejectsBadInputs) {
  EXPECT_THROW(RotaryCache(7, 16, 10000.0), Error);  // odd head_dim
  RotaryCache rope(4, 8, 10000.0);
  Tensor v({4});
  EXPECT_THROW(rope.apply(v.values(), 8), Error);  // position out of range
}

TEST(Transformer, ParameterNamesFollowLlamaConvention) {
  Rng rng(3);
  TransformerModel model(micro_config(), rng);
  const Checkpoint ckpt = model.to_checkpoint();
  EXPECT_TRUE(ckpt.has("model.embed_tokens.weight"));
  EXPECT_TRUE(ckpt.has("model.layers.0.self_attn.q_proj.weight"));
  EXPECT_TRUE(ckpt.has("model.layers.1.mlp.down_proj.weight"));
  EXPECT_TRUE(ckpt.has("model.norm.weight"));
  EXPECT_EQ(ckpt.tensors().size(), 1u + 2u * 9u + 1u);
}

TEST(Transformer, ParameterCountMatchesConfigFormula) {
  Rng rng(3);
  TransformerModel model(micro_config(), rng);
  EXPECT_EQ(model.parameter_count(), micro_config().parameter_count());
}

TEST(Transformer, ForwardShapeAndFiniteness) {
  Rng rng(4);
  TransformerModel model(micro_config(), rng);
  const std::vector<TokenId> tokens = {1, 5, 7, 3};
  const Tensor logits = model.forward(tokens);
  EXPECT_EQ(logits.dim(0), 4);
  EXPECT_EQ(logits.dim(1), 11);
  EXPECT_TRUE(logits.all_finite());
  model.discard_forward();
}

TEST(Transformer, ForwardRejectsBadInput) {
  Rng rng(4);
  TransformerModel model(micro_config(), rng);
  EXPECT_THROW(model.forward({}), Error);
  EXPECT_THROW(model.forward(std::vector<TokenId>(17, 1)), Error);  // > max_seq
  EXPECT_THROW(model.forward({99}), Error);  // out of vocab
}

TEST(Transformer, BackwardWithoutForwardThrows) {
  Rng rng(4);
  TransformerModel model(micro_config(), rng);
  EXPECT_THROW(model.backward(Tensor({1, 11})), Error);
}

TEST(Transformer, CheckpointRoundTripPreservesLogits) {
  Rng rng(5);
  TransformerModel model(micro_config(), rng);
  const std::vector<TokenId> tokens = {2, 4, 6};
  const Tensor logits1 = model.forward(tokens);
  model.discard_forward();

  TransformerModel restored =
      TransformerModel::from_checkpoint(model.to_checkpoint());
  const Tensor logits2 = restored.forward(tokens);
  restored.discard_forward();
  EXPECT_LT(ops::max_abs_diff(logits1, logits2), 1e-6);
}

/// The pivotal test: analytic gradients vs central finite differences for a
/// sampled subset of every parameter tensor.
TEST(Transformer, GradientsMatchFiniteDifferences) {
  Rng rng(6);
  TransformerModel model(micro_config(), rng);
  const std::vector<TokenId> tokens = {1, 5, 7, 3, 9, 2};
  std::vector<float> mask(tokens.size(), 1.0F);
  mask[0] = 0.0F;

  auto loss_value = [&]() {
    const Tensor logits = model.forward(tokens);
    const LossResult loss = cross_entropy_next_token(logits, tokens, mask);
    model.discard_forward();
    return loss.loss;
  };

  // Analytic gradients.
  model.zero_grad();
  {
    const Tensor logits = model.forward(tokens);
    const LossResult loss = cross_entropy_next_token(logits, tokens, mask);
    model.backward(loss.dlogits);
  }

  Rng pick(7);
  constexpr double kH = 2e-3;
  for (Parameter* param : model.parameters()) {
    const std::int64_t numel = param->value.numel();
    const int samples = numel < 5 ? static_cast<int>(numel) : 5;
    for (int s = 0; s < samples; ++s) {
      const auto idx = static_cast<std::int64_t>(
          pick.uniform_index(static_cast<std::uint64_t>(numel)));
      const float saved = param->value[idx];

      param->value[idx] = saved + static_cast<float>(kH);
      const double plus = loss_value();
      param->value[idx] = saved - static_cast<float>(kH);
      const double minus = loss_value();
      param->value[idx] = saved;

      const double numeric = (plus - minus) / (2.0 * kH);
      const double analytic = param->grad[idx];
      EXPECT_NEAR(analytic, numeric,
                  std::max(4e-3, 4e-2 * std::abs(analytic)))
          << param->name << "[" << idx << "]";
    }
  }
}

TEST(Inference, KvCacheMatchesFullForward) {
  Rng rng(8);
  TransformerModel model(micro_config(), rng);
  const std::vector<TokenId> tokens = {1, 4, 9, 2, 7};

  const Tensor full_logits = model.forward(tokens);
  model.discard_forward();

  InferenceSession session(model);
  std::vector<float> incremental;
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    incremental = session.step(tokens[t]);
    // Every intermediate position must match the full forward row.
    for (std::int64_t v = 0; v < full_logits.dim(1); ++v) {
      EXPECT_NEAR(incremental[static_cast<std::size_t>(v)],
                  full_logits.at2(static_cast<std::int64_t>(t), v), 2e-4)
          << "pos " << t << " vocab " << v;
    }
  }
}

TEST(Inference, ResetClearsState) {
  Rng rng(9);
  TransformerModel model(micro_config(), rng);
  InferenceSession session(model);
  const auto first = session.step(3);
  session.step(5);
  session.reset();
  EXPECT_EQ(session.position(), 0);
  const auto again = session.step(3);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], again[i]);
  }
}

TEST(Inference, CacheOverflowThrows) {
  Rng rng(10);
  TransformerModel model(micro_config(), rng);
  InferenceSession session(model);
  for (int i = 0; i < 16; ++i) session.step(1);
  EXPECT_THROW(session.step(1), Error);
}

TEST(Inference, SequenceLogprobMatchesManualSum) {
  Rng rng(11);
  TransformerModel model(micro_config(), rng);
  const std::vector<TokenId> context = {1, 4};
  const std::vector<TokenId> continuation = {7, 2};

  // Manual: run the full sequence, sum log-softmax at the right positions.
  std::vector<TokenId> all = context;
  all.insert(all.end(), continuation.begin(), continuation.end());
  const Tensor logits = model.forward(all);
  model.discard_forward();
  double manual = 0.0;
  for (std::size_t i = 0; i < continuation.size(); ++i) {
    const auto row =
        logits.row(static_cast<std::int64_t>(context.size() + i - 1));
    manual +=
        static_cast<double>(row[static_cast<std::size_t>(continuation[i])]) -
        ops::log_sum_exp(row);
  }

  const double via_api = sequence_logprob(model, context, continuation);
  EXPECT_NEAR(via_api, manual, 1e-3);
  EXPECT_NEAR(mean_logprob(model, context, continuation), manual / 2.0, 1e-3);
}

TEST(Inference, StepRejectsInvalidToken) {
  Rng rng(14);
  TransformerModel model(micro_config(), rng);
  InferenceSession session(model);
  EXPECT_THROW(session.step(-1), Error);
  EXPECT_THROW(session.step(static_cast<TokenId>(
                   model.config().vocab_size)),
               Error);
}

TEST(Inference, MultiHeadAndGroupedQueryBothRun) {
  // Same dims with n_kv_heads == n_heads (MHA) and < n_heads (GQA): both
  // paths must produce finite logits and agree between train-time forward
  // and KV-cache inference.
  for (std::int64_t kv_heads : {1, 2}) {
    ModelConfig config = micro_config();
    config.n_kv_heads = kv_heads;
    Rng rng(20 + kv_heads);
    TransformerModel model(config, rng);
    const std::vector<TokenId> tokens = {3, 8, 1, 6};
    const Tensor full = model.forward(tokens);
    model.discard_forward();
    EXPECT_TRUE(full.all_finite());

    InferenceSession session(model);
    std::vector<float> last;
    for (TokenId t : tokens) last = session.step(t);
    for (std::int64_t v = 0; v < full.dim(1); ++v) {
      EXPECT_NEAR(last[static_cast<std::size_t>(v)],
                  full.at2(static_cast<std::int64_t>(tokens.size()) - 1, v),
                  2e-4)
          << "kv_heads " << kv_heads;
    }
  }
}

TEST(Transformer, GradientAccumulatesAcrossBackwardCalls) {
  Rng rng(15);
  TransformerModel model(micro_config(), rng);
  const std::vector<TokenId> tokens = {1, 5, 7};
  std::vector<float> mask(tokens.size(), 1.0F);
  mask[0] = 0.0F;

  auto run_backward = [&] {
    const Tensor logits = model.forward(tokens);
    const LossResult loss = cross_entropy_next_token(logits, tokens, mask);
    model.backward(loss.dlogits);
  };

  model.zero_grad();
  run_backward();
  const Tensor once = model.parameters()[0]->grad;
  run_backward();  // no zero_grad: should accumulate
  const Tensor twice = model.parameters()[0]->grad;
  EXPECT_LT(ops::max_abs_diff(twice, ops::scaled(once, 2.0F)), 1e-4);
}

TEST(Inference, GreedyGenerationIsDeterministic) {
  Rng rng(12);
  ModelConfig config = micro_config();
  config.vocab_size = tokenizer().vocab_size();
  config.max_seq_len = 64;
  TransformerModel model(config, rng);
  GenerateOptions options;
  options.max_new_tokens = 8;
  const std::string a = generate(model, "hi", options);
  const std::string b = generate(model, "hi", options);
  EXPECT_EQ(a, b);
}

TEST(Inference, TemperatureSamplingRespectsSeed) {
  Rng rng(13);
  ModelConfig config = micro_config();
  config.vocab_size = tokenizer().vocab_size();
  config.max_seq_len = 64;
  TransformerModel model(config, rng);
  GenerateOptions options;
  options.max_new_tokens = 8;
  options.temperature = 1.0;
  options.seed = 5;
  const std::string a = generate(model, "hi", options);
  const std::string b = generate(model, "hi", options);
  EXPECT_EQ(a, b);  // same seed, same text
}

}  // namespace
}  // namespace chipalign
