// Tests for the fast inference engine (src/nn/infer.*): bitwise
// determinism of decoding across kernel backends, KV snapshot/restore
// semantics, the renormalized sampling CDF, and the deterministic parallel
// evaluation harness (serial scores == pooled scores, exactly).
//
// Suite names (InferEngine, ParallelEval) are stable so sanitizer CI can
// select them with ctest -R.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "data/corpus.hpp"
#include "data/qa_bench.hpp"
#include "eval/qa_runner.hpp"
#include "nn/infer.hpp"
#include "rag/retrieval.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/tensor_ops.hpp"
#include "text/tokenizer.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {
namespace {

using kernels::force_generic;

/// Small but SIMD-exercising model: head_dim 16 gives full 8-lane blocks
/// plus the vector loop, vocab 50 keeps the logits matvec non-trivial.
ModelConfig engine_config() {
  ModelConfig config;
  config.name = "engine-test";
  config.vocab_size = 50;
  config.d_model = 32;
  config.n_layers = 2;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 48;
  config.max_seq_len = 64;
  config.validate();
  return config;
}

/// Tokenizer-vocab model for the eval harness (prompts are real text).
ModelConfig harness_config() {
  ModelConfig config;
  config.name = "parallel-harness";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 16;
  config.n_layers = 1;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 24;
  config.max_seq_len = 512;
  config.validate();
  return config;
}

std::vector<TokenId> ramp_tokens(std::size_t n, std::int64_t vocab,
                                 std::size_t stride) {
  std::vector<TokenId> tokens(n);
  for (std::size_t i = 0; i < n; ++i) {
    tokens[i] = static_cast<TokenId>((i * stride + 1) %
                                     static_cast<std::size_t>(vocab));
  }
  return tokens;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// Greedy-decodes `steps` tokens after prefilling `prompt`; returns the
/// chosen token ids.
std::vector<TokenId> greedy_decode(const TransformerModel& model,
                                   const std::vector<TokenId>& prompt,
                                   std::int64_t steps) {
  InferenceSession session(model);
  std::vector<float> logits = session.prefill(prompt);
  std::vector<TokenId> out;
  for (std::int64_t t = 0; t < steps; ++t) {
    const auto next = static_cast<TokenId>(
        ops::argmax(std::span<const float>(logits.data(), logits.size())));
    out.push_back(next);
    logits = session.step(next);
  }
  return out;
}

class InferEngine : public ::testing::Test {
 protected:
  void TearDown() override { force_generic(false); }
};

// The engine's core determinism claim: logits and greedy decisions are
// bit-identical on the generic and SIMD backends.
TEST_F(InferEngine, StepLogitsAndGreedyDecodeBitwiseAcrossBackends) {
  Rng rng(21);
  const TransformerModel model(engine_config(), rng);
  const auto prompt = ramp_tokens(12, model.config().vocab_size, 7);

  force_generic(true);
  InferenceSession generic_session(model);
  const std::vector<float> generic_logits = generic_session.prefill(prompt);
  const auto generic_decode = greedy_decode(model, prompt, 24);

  force_generic(false);
  if (!kernels::simd_available()) GTEST_SKIP() << "no SIMD backend";
  InferenceSession simd_session(model);
  const std::vector<float> simd_logits = simd_session.prefill(prompt);
  EXPECT_TRUE(bitwise_equal(generic_logits, simd_logits));
  EXPECT_EQ(greedy_decode(model, prompt, 24), generic_decode);
}

TEST_F(InferEngine, SequenceLogprobBitwiseAcrossBackends) {
  Rng rng(22);
  const TransformerModel model(engine_config(), rng);
  const auto context = ramp_tokens(9, model.config().vocab_size, 5);
  const auto continuation = ramp_tokens(6, model.config().vocab_size, 11);

  force_generic(true);
  const double generic_lp = sequence_logprob(model, context, continuation);
  force_generic(false);
  if (!kernels::simd_available()) GTEST_SKIP() << "no SIMD backend";
  const double simd_lp = sequence_logprob(model, context, continuation);
  EXPECT_EQ(generic_lp, simd_lp);  // bitwise, not NEAR
}

// reset() deliberately leaves stale KV entries behind (and construction
// never zero-fills); a reused session must still reproduce a fresh
// session's bits exactly, proving positions >= position() are never read.
TEST_F(InferEngine, ResetAndReuseMatchesFreshSessionBitwise) {
  Rng rng(23);
  const TransformerModel model(engine_config(), rng);
  const auto first = ramp_tokens(20, model.config().vocab_size, 3);
  const auto second = ramp_tokens(8, model.config().vocab_size, 13);

  InferenceSession reused(model);
  reused.prefill(first);  // pollute the cache past second's length
  reused.reset();
  EXPECT_EQ(reused.position(), 0);
  const std::vector<float> reused_logits = reused.prefill(second);

  InferenceSession fresh(model);
  const std::vector<float> fresh_logits = fresh.prefill(second);
  EXPECT_TRUE(bitwise_equal(reused_logits, fresh_logits));
}

TEST_F(InferEngine, SnapshotRestoreMatchesReprefillBitwise) {
  Rng rng(24);
  const TransformerModel model(engine_config(), rng);
  const auto context = ramp_tokens(10, model.config().vocab_size, 7);
  const auto cont_a = ramp_tokens(5, model.config().vocab_size, 17);
  const auto cont_b = ramp_tokens(7, model.config().vocab_size, 19);

  InferenceSession session(model);
  const std::vector<float> context_logits = session.prefill(context);
  const InferenceSession::Snapshot snap = session.snapshot();
  EXPECT_EQ(snap.position, static_cast<std::int64_t>(context.size()));

  const double lp_a = continuation_logprob(session, context_logits, cont_a);
  session.restore(snap);
  EXPECT_EQ(session.position(), snap.position);
  const double lp_b = continuation_logprob(session, context_logits, cont_b);

  // The re-prefilling scorer must agree to the last bit.
  EXPECT_EQ(lp_a, sequence_logprob(model, context, cont_a));
  EXPECT_EQ(lp_b, sequence_logprob(model, context, cont_b));
  EXPECT_EQ(mean_logprob(model, context, cont_b),
            lp_b / static_cast<double>(cont_b.size()));
}

TEST_F(InferEngine, SnapshotRoundtripReplaysIdenticalDecode) {
  Rng rng(25);
  const TransformerModel model(engine_config(), rng);
  const auto prompt = ramp_tokens(6, model.config().vocab_size, 9);

  InferenceSession session(model);
  std::vector<float> logits = session.prefill(prompt);
  const InferenceSession::Snapshot snap = session.snapshot();
  const std::vector<float> logits_at_snap = logits;

  auto decode_from = [&](std::vector<float> row) {
    std::vector<TokenId> out;
    for (int t = 0; t < 16; ++t) {
      const auto next = static_cast<TokenId>(
          ops::argmax(std::span<const float>(row.data(), row.size())));
      out.push_back(next);
      row = session.step(next);
    }
    return out;
  };
  const auto first_run = decode_from(logits_at_snap);
  session.restore(snap);
  const auto second_run = decode_from(logits_at_snap);
  EXPECT_EQ(first_run, second_run);
}

// restore() must reject snapshots it cannot install instead of silently
// corrupting the KV cache: positions beyond the cache capacity, snapshots
// taken over a differently-shaped model, and internally inconsistent ones.
TEST_F(InferEngine, RestoreRejectsOversizedPosition) {
  Rng rng(26);
  const TransformerModel model(engine_config(), rng);
  InferenceSession session(model);
  session.prefill(ramp_tokens(4, model.config().vocab_size, 7));
  InferenceSession::Snapshot snap = session.snapshot();
  snap.position = model.config().max_seq_len + 1;
  EXPECT_THROW(session.restore(snap), Error);
  snap.position = -1;
  EXPECT_THROW(session.restore(snap), Error);
}

TEST_F(InferEngine, RestoreRejectsSnapshotFromDifferentModelShape) {
  Rng rng(27);
  const TransformerModel model(engine_config(), rng);
  ModelConfig other_config = engine_config();
  other_config.n_layers = 1;
  other_config.validate();
  Rng other_rng(27);
  const TransformerModel other(other_config, other_rng);

  InferenceSession donor(other);
  donor.prefill(ramp_tokens(4, other.config().vocab_size, 7));
  const InferenceSession::Snapshot snap = donor.snapshot();

  InferenceSession session(model);
  EXPECT_THROW(session.restore(snap), Error);
}

TEST_F(InferEngine, RestoreRejectsInconsistentCacheSizes) {
  Rng rng(28);
  const TransformerModel model(engine_config(), rng);
  InferenceSession session(model);
  session.prefill(ramp_tokens(4, model.config().vocab_size, 7));
  InferenceSession::Snapshot snap = session.snapshot();
  snap.k.pop_back();
  EXPECT_THROW(session.restore(snap), Error);
}

TEST_F(InferEngine, SampleFromProbsSkipsZeroProbabilityTail) {
  // The pre-fix sampler fell off the CDF on float underflow and returned
  // the last index even at probability zero. The renormalized walk must
  // land on the last *nonzero* index instead.
  const std::vector<float> probs = {0.5F, 0.5F, 0.0F};
  EXPECT_EQ(sample_from_probs(probs, 0.999999), 1);
  EXPECT_EQ(sample_from_probs(probs, 0.0), 0);
  EXPECT_EQ(sample_from_probs(probs, 0.5), 1);
}

TEST_F(InferEngine, SampleFromProbsRenormalizesImproperMass) {
  // Softmax output that lost mass to rounding: draw scales by the actual
  // sum, so the distribution is still covered proportionally.
  const std::vector<float> probs = {0.25F, 0.25F};
  EXPECT_EQ(sample_from_probs(probs, 0.49), 0);
  EXPECT_EQ(sample_from_probs(probs, 0.51), 1);
}

TEST_F(InferEngine, TemperatureSamplingStaysInVocab) {
  Rng rng(26);
  const TransformerModel model(harness_config(), rng);
  GenerateOptions options;
  options.max_new_tokens = 12;
  options.temperature = 0.8;
  options.seed = 99;
  // Must not throw and must decode round-trippable text.
  const std::string text = generate(model, "route the nets", options);
  for (const TokenId t : tokenizer().encode(text)) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, tokenizer().vocab_size());
  }
}

// -- deterministic parallel evaluation ---------------------------------------

void expect_same_scores(const CategoryScores& a, const CategoryScores& b) {
  EXPECT_EQ(a.all, b.all);  // exact — parallelism must not move a single bit
  EXPECT_EQ(a.by_category, b.by_category);
  EXPECT_EQ(a.counts, b.counts);
}

TEST(ParallelEval, OpenroadScoresIdenticalSerialAndPooled) {
  Rng rng(31);
  const TransformerModel model(harness_config(), rng);
  const FactBase facts;
  const auto items = build_openroad_eval(facts, 2, 6);
  const RetrievalPipeline rag(facts.corpus_sentences());
  ThreadPool pool(4);

  expect_same_scores(run_openroad_eval(model, items, nullptr),
                     run_openroad_eval(model, items, nullptr, 2, &pool));
  expect_same_scores(run_openroad_eval(model, items, &rag),
                     run_openroad_eval(model, items, &rag, 2, &pool));
}

TEST(ParallelEval, IndustrialScoresIdenticalSerialAndPooled) {
  Rng rng(32);
  const TransformerModel model(harness_config(), rng);
  const FactBase facts;
  const auto items = build_industrial_eval(facts, 3, 1);
  const RetrievalPipeline rag(facts.corpus_sentences());
  ThreadPool pool(4);

  for (const bool multi_turn : {false, true}) {
    expect_same_scores(
        run_industrial_eval(model, items, rag, multi_turn),
        run_industrial_eval(model, items, rag, multi_turn, 2, &pool));
  }
}

TEST(ParallelEval, MetricsIdenticalSerialAndPooled) {
  Rng rng(33);
  const TransformerModel model(harness_config(), rng);
  const FactBase facts;
  const auto items = build_openroad_eval(facts, 6, 5);
  ThreadPool pool(4);

  const auto serial = run_openroad_eval_metrics(model, items);
  const auto pooled = run_openroad_eval_metrics(model, items, &pool);
  ASSERT_EQ(serial.size(), pooled.size());
  for (const auto& [metric, scores] : serial) {
    ASSERT_TRUE(pooled.count(metric)) << metric;
    expect_same_scores(scores, pooled.at(metric));
  }
}

TEST(ParallelEval, McqSnapshotPathMatchesReprefillAndPoolInvariant) {
  Rng rng(34);
  const TransformerModel model(harness_config(), rng);
  const FactBase facts;
  const auto items = build_mcq_eval(facts, 4, 3);
  ThreadPool pool(4);

  const CategoryScores serial = run_mcq_eval(model, items);
  expect_same_scores(serial, run_mcq_eval(model, items, &pool));

  // Hand-rolled re-prefill baseline (one fresh session per choice, as the
  // harness worked before prefix-cache reuse) must pick identical winners.
  const CharTokenizer& tok = tokenizer();
  int agreements = 0;
  for (const McqItem& item : items) {
    const std::vector<TokenId> context =
        tok.encode(qa_prompt("", {}, item.question), /*add_bos=*/true);
    double best_score = -1e300;
    int best_choice = -1;
    for (std::size_t c = 0; c < item.choices.size(); ++c) {
      const double score =
          mean_logprob(model, context, tok.encode(item.choices[c]));
      if (score > best_score) {
        best_score = score;
        best_choice = static_cast<int>(c);
      }
    }
    agreements += best_choice == item.correct_index ? 1 : 0;
  }
  const double baseline_accuracy =
      static_cast<double>(agreements) / static_cast<double>(items.size());
  EXPECT_EQ(serial.all, baseline_accuracy);
}

}  // namespace
}  // namespace chipalign
