// Tests for the data module: instructions (truth tables), fact base,
// dataset builders and eval-set builders.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/corpus.hpp"
#include "data/fact_base.hpp"
#include "data/instructions.hpp"
#include "data/qa_bench.hpp"
#include "util/error.hpp"

namespace chipalign {
namespace {

// -- instructions
// -----------------------------------------------------------------

TEST(Instructions, ApplyProducesExpectedText) {
  EXPECT_EQ(apply_instruction(InstructionKind::kUpper, "ab c"), "AB C");
  EXPECT_EQ(apply_instruction(InstructionKind::kLower, "AB c"), "ab c");
  EXPECT_EQ(apply_instruction(InstructionKind::kBracket, "x"), "(x)");
  EXPECT_EQ(apply_instruction(InstructionKind::kQuote, "x"), "\"x\"");
  EXPECT_EQ(apply_instruction(InstructionKind::kPrefixAns, "x"), "ans: x");
  EXPECT_EQ(apply_instruction(InstructionKind::kSuffixDot, "x"), "x.");
  EXPECT_EQ(apply_instruction(InstructionKind::kRepeatTwice, "a b"),
            "a b; a b");
  EXPECT_EQ(apply_instruction(InstructionKind::kMaxWords3, "a b c d e"),
            "a b c");
}

TEST(Instructions, CanonicalCompositionOrder) {
  // [X2] then [UP] then [BR] regardless of input order.
  const std::vector<InstructionKind> kinds = {InstructionKind::kBracket,
                                              InstructionKind::kUpper,
                                              InstructionKind::kRepeatTwice};
  EXPECT_EQ(apply_instructions(kinds, "hi"), "(HI; HI)");
  const std::vector<InstructionKind> reversed = {InstructionKind::kRepeatTwice,
                                                 InstructionKind::kUpper,
                                                 InstructionKind::kBracket};
  EXPECT_EQ(apply_instructions(reversed, "hi"), "(HI; HI)");
}

TEST(Instructions, HeaderUsesCanonicalOrder) {
  const std::vector<InstructionKind> kinds = {InstructionKind::kBracket,
                                              InstructionKind::kUpper};
  EXPECT_EQ(instruction_header(kinds), "[UP] [BR]");
}

/// Truth-table property: a golden answer produced by apply_instructions
/// always passes the strict checker for each applied instruction.
class InstructionSelfConsistency
    : public ::testing::TestWithParam<InstructionKind> {};

TEST_P(InstructionSelfConsistency, GoldenAnswerPassesStrictCheck) {
  const InstructionKind kind = GetParam();
  for (const char* base : {"routes the nets in fast mode", "blue", "a b c d"}) {
    const std::string golden = apply_instruction(kind, base);
    EXPECT_TRUE(verify_strict(kind, golden))
        << instruction_tag(kind) << " on '" << base << "' -> '" << golden
            << "'";
    EXPECT_TRUE(verify_loose(kind, golden));
  }
}

TEST_P(InstructionSelfConsistency, ComposedGoldenPassesAllChecks) {
  const InstructionKind kind = GetParam();
  for (InstructionKind other : all_instruction_kinds()) {
    if (!compatible(kind, other)) continue;
    const std::vector<InstructionKind> kinds = {kind, other};
    const std::string golden = apply_instructions(kinds, "the wide wire");
    EXPECT_TRUE(verify_strict(kind, golden))
        << instruction_tag(kind) << "+" << instruction_tag(other) << " -> '"
        << golden << "'";
    EXPECT_TRUE(verify_strict(other, golden))
        << instruction_tag(kind) << "+" << instruction_tag(other) << " -> '"
        << golden << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, InstructionSelfConsistency,
                         ::testing::ValuesIn(all_instruction_kinds()),
                         [](const auto& info) {
                           std::string tag = instruction_tag(info.param);
                           std::string name;
                           for (char c : tag) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               name += c;
                             }
                           }
                           return name.empty() ? "Tag" : name;
                         });

TEST(Instructions, StrictCheckRejectsViolations) {
  EXPECT_FALSE(verify_strict(InstructionKind::kUpper, "Mixed Case"));
  EXPECT_FALSE(verify_strict(InstructionKind::kLower, "Mixed Case"));
  EXPECT_FALSE(verify_strict(InstructionKind::kBracket, "no brackets"));
  EXPECT_FALSE(verify_strict(InstructionKind::kQuote, "no quotes"));
  EXPECT_FALSE(verify_strict(InstructionKind::kPrefixAns, "answer: x"));
  EXPECT_FALSE(verify_strict(InstructionKind::kSuffixDot, "no dot"));
  EXPECT_FALSE(verify_strict(InstructionKind::kRepeatTwice, "once only"));
  EXPECT_FALSE(verify_strict(InstructionKind::kMaxWords3,
                             "one two three four"));
}

TEST(Instructions, LooseForgivesWrappers) {
  // Stray trailing period around an otherwise-bracketed answer.
  EXPECT_FALSE(verify_strict(InstructionKind::kQuote, "\"x\"),"));
  EXPECT_TRUE(verify_loose(InstructionKind::kQuote, "(\"x\")"));
  EXPECT_TRUE(verify_loose(InstructionKind::kMaxWords3, "a b c."));
}

TEST(Instructions, CompatibilityRules) {
  EXPECT_FALSE(compatible(InstructionKind::kUpper, InstructionKind::kLower));
  EXPECT_FALSE(
      compatible(InstructionKind::kMaxWords3, InstructionKind::kRepeatTwice));
  EXPECT_FALSE(compatible(InstructionKind::kUpper, InstructionKind::kUpper));
  EXPECT_TRUE(compatible(InstructionKind::kUpper, InstructionKind::kBracket));
}

TEST(Instructions, SampleRespectsCompatibility) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto kinds = sample_instructions(rng, 3);
    ASSERT_FALSE(kinds.empty());
    ASSERT_LE(kinds.size(), 3u);
    for (std::size_t a = 0; a < kinds.size(); ++a) {
      for (std::size_t b = a + 1; b < kinds.size(); ++b) {
        EXPECT_TRUE(compatible(kinds[a], kinds[b]));
      }
    }
  }
}

// -- fact base
// --------------------------------------------------------------------

TEST(FactBase, DeterministicForSeed) {
  const FactBase a(42);
  const FactBase b(42);
  ASSERT_EQ(a.facts().size(), b.facts().size());
  for (std::size_t i = 0; i < a.facts().size(); ++i) {
    EXPECT_EQ(a.facts()[i].context, b.facts()[i].context);
  }
}

TEST(FactBase, EveryDomainPopulated) {
  const FactBase facts;
  for (FactDomain domain :
       {FactDomain::kFunctionality, FactDomain::kVlsiFlow,
        FactDomain::kGuiInstallTest, FactDomain::kArch, FactDomain::kBuild,
        FactDomain::kLsf, FactDomain::kTestgen, FactDomain::kBugs,
        FactDomain::kCircuits}) {
    EXPECT_GE(facts.domain_facts(domain).size(), 4u) << domain_name(domain);
  }
}

TEST(FactBase, AnswersAreContainedInContexts) {
  const FactBase facts;
  for (const Fact& fact : facts.facts()) {
    EXPECT_NE(fact.context.find(fact.answer), std::string::npos)
        << fact.id << ": '" << fact.answer << "' not in '" << fact.context
            << "'";
  }
}

TEST(FactBase, CorpusContainsEveryContextPlusDistractors) {
  const FactBase facts;
  EXPECT_GT(facts.corpus_sentences().size(), facts.facts().size());
  for (const Fact& fact : facts.facts()) {
    EXPECT_NE(std::find(facts.corpus_sentences().begin(),
                        facts.corpus_sentences().end(), fact.context),
              facts.corpus_sentences().end());
  }
}

TEST(FactBase, OpenroadDomainPredicate) {
  EXPECT_TRUE(is_openroad_domain(FactDomain::kVlsiFlow));
  EXPECT_FALSE(is_openroad_domain(FactDomain::kLsf));
}

// -- prompt assembly
// ------------------------------------------------------------------

TEST(Prompts, QaPromptLayout) {
  const std::string prompt = qa_prompt("[UP]", {"c1", "c2"}, "what?");
  EXPECT_EQ(prompt, "do: [UP]\nctx: c1\nctx: c2\nq: what?\nout: ");
  EXPECT_EQ(qa_prompt("", {}, "what?"), "q: what?\nout: ");
}

TEST(Prompts, FormatPromptRequiresHeader) {
  EXPECT_EQ(format_prompt("[BR]", "abc"), "do: [BR]\ntxt: abc\nout: ");
  EXPECT_THROW(format_prompt("", "abc"), Error);
}

TEST(Prompts, SegmentedExampleWeightsSegments) {
  const TrainExample example = make_segmented_example(
      {{"ab", 0.0F}, {"cd", 1.0F}}, 32, /*final_eos=*/true);
  // bos + a b + c d + eos
  ASSERT_EQ(example.tokens.size(), 6u);
  EXPECT_EQ(example.target_mask[0], 0.0F);
  EXPECT_EQ(example.target_mask[1], 0.0F);
  EXPECT_EQ(example.target_mask[3], 1.0F);
  EXPECT_EQ(example.target_mask[5], 1.0F);  // eos inherits last weight
}

// -- generic doc facts
// --------------------------------------------------------------

TEST(GenericDocFacts, AnswersAreExtractableFromContexts) {
  // The extraction invariant: every generic doc fact's answer appears
  // verbatim in its context, so copying is always a winning strategy.
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    const GenericDocFact fact = sample_generic_doc_fact(rng);
    EXPECT_NE(fact.context.find(fact.answer), std::string::npos)
        << "'" << fact.answer << "' not in '" << fact.context << "'";
    EXPECT_FALSE(fact.question.empty());
  }
}

TEST(GenericDocFacts, DeterministicForSeed) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 50; ++i) {
    const GenericDocFact fa = sample_generic_doc_fact(a);
    const GenericDocFact fb = sample_generic_doc_fact(b);
    EXPECT_EQ(fa.context, fb.context);
    EXPECT_EQ(fa.question, fb.question);
    EXPECT_EQ(fa.answer, fb.answer);
  }
}

TEST(GenericDocFacts, EntitySlotsAreDiverse) {
  // Random-word slots should make contexts essentially unique, preventing
  // models from memorizing slot fillers.
  Rng rng(7);
  std::set<std::string> contexts;
  constexpr int kSamples = 200;
  for (int i = 0; i < kSamples; ++i) {
    contexts.insert(sample_generic_doc_fact(rng).context);
  }
  EXPECT_GT(contexts.size(), kSamples * 9 / 10);
}

// -- dataset builders
// ------------------------------------------------------------------

TEST(Datasets, PretrainBuilderProducesRequestedCount) {
  const FactBase facts;
  PretrainDataConfig config;
  config.count = 50;
  const auto dataset = build_pretrain_dataset(facts, config);
  EXPECT_EQ(dataset.size(), 50u);
  for (const TrainExample& example : dataset) {
    EXPECT_FALSE(example.tokens.empty());
    EXPECT_EQ(example.tokens.size(), example.target_mask.size());
  }
}

TEST(Datasets, InstructBuilderGoldenAnswersVerify) {
  InstructDataConfig config;
  config.count = 30;
  const auto dataset = build_instruct_dataset(config);
  EXPECT_EQ(dataset.size(), 30u);
  // Every example must contain some supervised target tokens.
  for (const TrainExample& example : dataset) {
    float weight = 0.0F;
    for (float w : example.target_mask) weight += w;
    EXPECT_GT(weight, 0.0F);
  }
}

TEST(Datasets, ChipBuilderFiltersDomains) {
  const FactBase facts;
  ChipDataConfig config;
  config.repeats_per_fact = 2;
  config.domains = {FactDomain::kLsf};
  const auto dataset = build_chip_daft_dataset(facts, config);
  EXPECT_EQ(dataset.size(),
            facts.domain_facts(FactDomain::kLsf).size() * 2u);
}

TEST(Datasets, ChipBuilderRejectsEmptySelection) {
  const FactBase facts;
  ChipDataConfig config;
  config.domains = {};  // all domains is fine
  EXPECT_GT(build_chip_daft_dataset(facts, config).size(), 0u);
}

// -- eval set builders
// ---------------------------------------------------------------------

TEST(EvalSets, OpenroadCoversAllThreeCategories) {
  const FactBase facts;
  const auto items = build_openroad_eval(facts, 1, 90);
  EXPECT_EQ(items.size(), 90u);
  std::set<FactDomain> seen;
  for (const QaEvalItem& item : items) {
    seen.insert(item.domain);
    EXPECT_TRUE(is_openroad_domain(item.domain));
    EXPECT_FALSE(item.instructions.empty());
    // Golden answer must be the instruction-transformed plain answer.
    EXPECT_EQ(item.golden_answer,
              apply_instructions(item.instructions, item.plain_answer));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(EvalSets, IndustrialHasTwoTurnsPerItem) {
  const FactBase facts;
  const auto items = build_industrial_eval(facts, 2, 3);
  EXPECT_EQ(items.size(), 12u);  // 4 domains x 3
  for (const IndustrialItem& item : items) {
    ASSERT_EQ(item.turns.size(), 2u);
    EXPECT_NE(item.turns[0].question, item.turns[1].question);
  }
}

TEST(EvalSets, McqHasUniqueChoicesAndValidIndex) {
  const FactBase facts;
  const auto items = build_mcq_eval(facts, 3, 8);
  EXPECT_EQ(items.size(), 24u);
  for (const McqItem& item : items) {
    ASSERT_EQ(item.choices.size(), 4u);
    ASSERT_GE(item.correct_index, 0);
    ASSERT_LT(item.correct_index, 4);
    std::set<std::string> unique(item.choices.begin(), item.choices.end());
    EXPECT_EQ(unique.size(), 4u) << item.id;
  }
}

TEST(EvalSets, IfevalPromptsCarryTheirTags) {
  const auto items = build_ifeval_set(4, 25, 3);
  EXPECT_EQ(items.size(), 25u);
  for (const IfEvalItem& item : items) {
    for (InstructionKind kind : item.instructions) {
      EXPECT_NE(item.prompt.find(instruction_tag(kind)), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace chipalign
