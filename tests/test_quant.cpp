// Quantized storage and inference: fp16/bf16 conversion properties, int8
// per-row-scale error bounds, backend-vs-reference bitwise equality of the
// dequantizing kernels, and the end-to-end determinism contract of
// quantized models and fp16 KV caches (DESIGN.md §4i).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "model/checkpoint.hpp"
#include "nn/infer.hpp"
#include "nn/transformer.hpp"
#include "serve/server.hpp"
#include "tensor/half.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/quant.hpp"
#include "text/tokenizer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {
namespace {

using kernels::force_generic;

bool is_f16_nan(std::uint16_t bits) {
  return (bits & 0x7C00U) == 0x7C00U && (bits & 0x03FFU) != 0;
}

bool is_bf16_nan(std::uint16_t bits) {
  return (bits & 0x7F80U) == 0x7F80U && (bits & 0x007FU) != 0;
}

// -- fp16 / bf16 conversion properties ---------------------------------------

TEST(DtypeHalf, F16RoundTripAllBitPatterns) {
  // Every f16 value is exactly representable in f32, so expand-then-narrow
  // must be the identity on all 65536 bit patterns (NaNs stay NaN).
  for (std::uint32_t bits = 0; bits <= 0xFFFFU; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float f = f16_bits_to_f32(h);
    if (is_f16_nan(h)) {
      EXPECT_TRUE(std::isnan(f)) << "bits=" << bits;
      EXPECT_TRUE(is_f16_nan(f32_to_f16_bits(f))) << "bits=" << bits;
    } else {
      EXPECT_EQ(f32_to_f16_bits(f), h) << "bits=" << bits;
    }
  }
}

TEST(DtypeHalf, Bf16RoundTripAllBitPatterns) {
  for (std::uint32_t bits = 0; bits <= 0xFFFFU; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float f = bf16_bits_to_f32(h);
    if (is_bf16_nan(h)) {
      EXPECT_TRUE(std::isnan(f)) << "bits=" << bits;
      EXPECT_TRUE(is_bf16_nan(f32_to_bf16_bits(f))) << "bits=" << bits;
    } else {
      EXPECT_EQ(f32_to_bf16_bits(f), h) << "bits=" << bits;
    }
  }
}

TEST(DtypeHalf, F16RoundsToNearestEven) {
  // 1 + 2^-11 sits exactly between 1.0 (mantissa 0, even) and 1 + 2^-10
  // (mantissa 1): ties go to the even mantissa.
  EXPECT_EQ(f32_to_f16_bits(1.0F + 0x1p-11F), f32_to_f16_bits(1.0F));
  // 1 + 3*2^-11 sits between mantissa 1 and mantissa 2: tie -> 2 (even).
  EXPECT_EQ(f32_to_f16_bits(1.0F + 3 * 0x1p-11F),
            f32_to_f16_bits(1.0F + 2 * 0x1p-10F));
  // Anything past the halfway point rounds up regardless of parity.
  EXPECT_EQ(f32_to_f16_bits(1.0F + 0x1p-11F + 0x1p-22F),
            f32_to_f16_bits(1.0F + 0x1p-10F));
}

TEST(DtypeHalf, Bf16RoundsToNearestEven) {
  // bf16 keeps 7 mantissa bits: the tie point above 1.0 is 2^-9.
  EXPECT_EQ(f32_to_bf16_bits(1.0F + 0x1p-9F), f32_to_bf16_bits(1.0F));
  EXPECT_EQ(f32_to_bf16_bits(1.0F + 3 * 0x1p-9F),
            f32_to_bf16_bits(1.0F + 2 * 0x1p-8F));
  EXPECT_EQ(f32_to_bf16_bits(1.0F + 0x1p-9F + 0x1p-20F),
            f32_to_bf16_bits(1.0F + 0x1p-8F));
}

TEST(DtypeHalf, F16SubnormalsRoundTrip) {
  // All 1023 positive subnormals (k * 2^-24) are exact in f32.
  for (std::uint16_t k = 1; k < 0x0400U; ++k) {
    const float f = std::ldexp(static_cast<float>(k), -24);
    EXPECT_EQ(f32_to_f16_bits(f), k) << "k=" << k;
    EXPECT_EQ(f16_bits_to_f32(k), f) << "k=" << k;
  }
  // Below half the smallest subnormal, round-to-nearest-even gives zero.
  EXPECT_EQ(f32_to_f16_bits(0x1p-26F), 0);
  // Exactly halfway between 2^-24 (odd) and 2^-23 (even): tie -> 2^-23.
  EXPECT_EQ(f32_to_f16_bits(3 * 0x1p-25F), 2);
}

// -- int8 per-row-scale quantization -----------------------------------------

TEST(QuantInt8, ReconstructionErrorWithinHalfScale) {
  Rng rng(313);
  const std::int64_t cols = 257;  // odd tail
  std::vector<float> row(static_cast<std::size_t>(cols));
  for (float& v : row) v = static_cast<float>(rng.gaussian()) * 3.0F;
  const float scale = int8_row_scale(row.data(), cols);
  ASSERT_GT(scale, 0.0F);
  std::vector<std::int8_t> codes(row.size());
  quantize_row_i8(row.data(), cols, scale, codes.data());
  float max_abs = 0.0F;
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_GE(codes[i], -127);
    EXPECT_LE(codes[i], 127);
    const float rebuilt = static_cast<float>(codes[i]) * scale;
    EXPECT_LE(std::abs(rebuilt - row[i]), 0.5F * scale + 1e-6F) << i;
    max_abs = std::max(max_abs, std::abs(row[i]));
  }
  EXPECT_FLOAT_EQ(scale, max_abs / 127.0F);
}

TEST(QuantInt8, ZeroRowQuantizesToZero) {
  const std::int64_t cols = 16;
  std::vector<float> row(static_cast<std::size_t>(cols), 0.0F);
  EXPECT_EQ(int8_row_scale(row.data(), cols), 0.0F);
  std::vector<std::int8_t> codes(row.size(), 42);
  quantize_row_i8(row.data(), cols, 0.0F, codes.data());
  for (const std::int8_t c : codes) EXPECT_EQ(c, 0);
}

TEST(QuantInt8, TensorRoundTripAndRowDequant) {
  Rng rng(707);
  Tensor t = Tensor::randn({9, 33}, rng, 0.5F);
  const QuantTensor qt = quantize_tensor(t, DType::kI8);
  EXPECT_EQ(qt.dtype, DType::kI8);
  EXPECT_EQ(qt.rows, 9);
  EXPECT_EQ(qt.cols, 33);
  EXPECT_EQ(qt.scales.size(), 9u);
  const Tensor back = dequantize_tensor(qt);
  std::vector<float> row(33);
  for (std::int64_t r = 0; r < 9; ++r) {
    dequantize_row(qt, r, row.data());
    for (std::int64_t c = 0; c < 33; ++c) {
      const float expected =
          static_cast<float>(qt.q[static_cast<std::size_t>(r * 33 + c)]) *
          qt.scales[static_cast<std::size_t>(r)];
      EXPECT_EQ(back.data()[r * 33 + c], expected);
      EXPECT_EQ(row[static_cast<std::size_t>(c)], expected);
    }
  }
}

// -- dequantizing kernels: backend vs reference, bitwise ---------------------

template <typename Body>
void for_each_backend(const Body& body) {
  force_generic(true);
  body("generic");
  force_generic(false);
  if (kernels::simd_available()) body(kernels::backend_name());
}

class QuantKernels : public ::testing::Test {
 protected:
  void TearDown() override { force_generic(false); }
};

TEST_F(QuantKernels, DotF16MatchesRefAndExpandedDot) {
  Rng rng(515);
  for (const std::size_t n : {std::size_t{1}, std::size_t{8}, std::size_t{61},
                              std::size_t{1003}}) {
    std::vector<std::uint16_t> a(n);
    std::vector<float> a_f32(n);
    std::vector<float> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = f32_to_f16_bits(static_cast<float>(rng.gaussian()));
      a_f32[i] = f16_bits_to_f32(a[i]);
      b[i] = static_cast<float>(rng.gaussian());
    }
    const double expected = kernels::ref::dot_f16(a.data(), b.data(), n);
    // Stored f16 expands exactly to f32, so the dequantizing dot is the
    // plain dot of the expanded values — the property attention_row's
    // fp16-KV path relies on.
    EXPECT_EQ(expected, kernels::ref::dot(a_f32.data(), b.data(), n));
    for_each_backend([&](const char* backend) {
      EXPECT_EQ(kernels::dot_f16(a.data(), b.data(), n), expected)
          << "n=" << n << " backend=" << backend;
    });
  }
}

TEST_F(QuantKernels, DotBf16AndI8MatchRefBitwise) {
  Rng rng(616);
  for (const std::size_t n : {std::size_t{8}, std::size_t{61},
                              std::size_t{1003}}) {
    std::vector<std::uint16_t> a16(n);
    std::vector<std::int8_t> a8(n);
    std::vector<float> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a16[i] = f32_to_bf16_bits(static_cast<float>(rng.gaussian()));
      a8[i] = static_cast<std::int8_t>(
          static_cast<int>(rng.uniform() * 255.0) - 127);
      b[i] = static_cast<float>(rng.gaussian());
    }
    const double e16 = kernels::ref::dot_bf16(a16.data(), b.data(), n);
    const double e8 = kernels::ref::dot_i8(a8.data(), b.data(), n);
    for_each_backend([&](const char* backend) {
      EXPECT_EQ(kernels::dot_bf16(a16.data(), b.data(), n), e16)
          << "n=" << n << " backend=" << backend;
      EXPECT_EQ(kernels::dot_i8(a8.data(), b.data(), n), e8)
          << "n=" << n << " backend=" << backend;
    });
  }
}

TEST_F(QuantKernels, MatvecI8MatchesRefAndThreadCount) {
  Rng rng(818);
  const std::int64_t out_dim = 37;
  const std::int64_t in_dim = 129;
  std::vector<std::int8_t> w(static_cast<std::size_t>(out_dim * in_dim));
  std::vector<float> scales(static_cast<std::size_t>(out_dim));
  std::vector<float> x(static_cast<std::size_t>(in_dim));
  for (auto& v : w) {
    v = static_cast<std::int8_t>(static_cast<int>(rng.uniform() * 255.0) -
                                 127);
  }
  for (auto& v : scales) v = static_cast<float>(rng.uniform()) + 0.01F;
  for (auto& v : x) v = static_cast<float>(rng.gaussian());

  std::vector<float> expected(static_cast<std::size_t>(out_dim));
  kernels::ref::matvec_i8(w.data(), scales.data(), x.data(), expected.data(),
                          out_dim, in_dim);
  std::vector<float> got(static_cast<std::size_t>(out_dim));
  for_each_backend([&](const char* backend) {
    std::fill(got.begin(), got.end(), 0.0F);
    kernels::matvec_i8(w.data(), scales.data(), x.data(), got.data(),
                       out_dim, in_dim);
    EXPECT_EQ(0, std::memcmp(got.data(), expected.data(),
                             got.size() * sizeof(float)))
        << "backend=" << backend;
    ThreadPool pool1(1);
    ThreadPool pool4(4);
    std::vector<float> y1(got.size());
    std::vector<float> y4(got.size());
    kernels::parallel_matvec_i8(w.data(), scales.data(), x.data(), y1.data(),
                                out_dim, in_dim, &pool1);
    kernels::parallel_matvec_i8(w.data(), scales.data(), x.data(), y4.data(),
                                out_dim, in_dim, &pool4);
    EXPECT_EQ(0, std::memcmp(y1.data(), expected.data(),
                             y1.size() * sizeof(float)))
        << "backend=" << backend;
    EXPECT_EQ(0, std::memcmp(y4.data(), expected.data(),
                             y4.size() * sizeof(float)))
        << "backend=" << backend;
  });
}

TEST_F(QuantKernels, MatmulNtF16MatchesRefBitwise) {
  Rng rng(919);
  const std::int64_t m = 5;
  const std::int64_t k = 67;
  const std::int64_t n = 11;
  std::vector<std::uint16_t> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(n * k));
  for (auto& v : a) v = f32_to_f16_bits(static_cast<float>(rng.gaussian()));
  for (auto& v : b) v = static_cast<float>(rng.gaussian());
  std::vector<float> expected(static_cast<std::size_t>(m * n));
  kernels::ref::matmul_nt_f16(a.data(), b.data(), expected.data(), m, k, n);
  std::vector<float> got(expected.size());
  for_each_backend([&](const char* backend) {
    std::fill(got.begin(), got.end(), 0.0F);
    kernels::matmul_nt_f16(a.data(), b.data(), got.data(), m, k, n);
    EXPECT_EQ(0, std::memcmp(got.data(), expected.data(),
                             got.size() * sizeof(float)))
        << "backend=" << backend;
  });
}

// -- quantized models end to end ---------------------------------------------

ModelConfig tiny_config() {
  ModelConfig config;
  config.name = "quant-test";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 32;
  config.n_layers = 2;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 48;
  config.max_seq_len = 256;
  config.validate();
  return config;
}

TEST(QuantModel, QuantizeWeightsGuardsAndAccounting) {
  Rng rng(0xA11CE);
  TransformerModel model(tiny_config(), rng);
  const std::int64_t params_before = model.parameter_count();
  const Checkpoint fp32_ckpt = model.to_checkpoint();

  model.quantize_weights(DType::kF16);
  EXPECT_EQ(model.weight_dtype(), DType::kF16);
  EXPECT_EQ(model.parameter_count(), params_before);
  // Inference-only: the training entry points reject quantized weights.
  EXPECT_THROW(model.forward({1, 2, 3}), Error);
  EXPECT_THROW(model.quantize_weights(DType::kI8), Error);

  // to_checkpoint() dequantizes, so shapes/names survive and the values
  // are the f16 rounding of the originals.
  const Checkpoint q_ckpt = model.to_checkpoint();
  EXPECT_EQ(q_ckpt.names(), fp32_ckpt.names());
  const Tensor& orig = fp32_ckpt.at("model.embed_tokens.weight");
  const Tensor& rounded = q_ckpt.at("model.embed_tokens.weight");
  for (std::int64_t i = 0; i < orig.numel(); ++i) {
    EXPECT_EQ(rounded.data()[i],
              f16_bits_to_f32(f32_to_f16_bits(orig.data()[i])));
  }
}

TEST(QuantModel, QuantizedGenerateIsDeterministicAndServedIdentically) {
  Rng rng(0xB0B);
  TransformerModel model(tiny_config(), rng);
  TransformerModel qmodel =
      TransformerModel::from_checkpoint(model.to_checkpoint());
  qmodel.quantize_weights(DType::kI8);

  GenerateOptions options;
  options.max_new_tokens = 12;
  const std::string prompt = "q: timing status\nout: ";
  const std::string first = generate(qmodel, prompt, options);
  EXPECT_EQ(first, generate(qmodel, prompt, options));

  // The batched serving path must reproduce serial generate() bit-for-bit
  // for quantized weights too (per-parameter kernel dispatch).
  ServeConfig serve;
  serve.max_batch = 4;
  Server server(qmodel, serve);
  std::vector<SessionId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(server.submit(server.text_request(prompt, options)));
  }
  server.run();
  for (const SessionId id : ids) {
    EXPECT_EQ(server.wait_result(id).text, first);
  }
}

TEST(QuantModel, Fp16KvCacheDeterministicAcrossRunsAndPrefixCache) {
  Rng rng(0xCAFE);
  TransformerModel model(tiny_config(), rng);
  GenerateOptions options;
  options.max_new_tokens = 8;
  const std::string header(120, 'x');
  std::vector<std::string> prompts;
  for (int i = 0; i < 6; ++i) {
    prompts.push_back(header + " q" + std::to_string(i));
  }

  const auto run = [&](std::size_t cache_bytes) {
    ServeConfig serve;
    serve.max_sessions = 2;  // later sessions admit after inserts
    serve.max_batch = 2;
    serve.prefix_cache_bytes = cache_bytes;
    serve.kv_dtype = DType::kF16;
    Server server(model, serve);
    std::vector<SessionId> ids;
    for (const auto& p : prompts) {
      ids.push_back(server.submit(server.text_request(p, options)));
    }
    server.run();
    std::vector<std::string> out;
    for (const SessionId id : ids) {
      out.push_back(server.wait_result(id).text);
    }
    return out;
  };

  const auto no_cache = run(0);
  // Prefix-cache hits restore the stored fp16 rows exactly, so outputs
  // must not change; and a second cached run must match the first.
  EXPECT_EQ(run(std::size_t{1} << 24), no_cache);
  EXPECT_EQ(run(std::size_t{1} << 24), no_cache);
}

TEST(QuantModel, CheckpointInt8SaveLoadReconstructsCodesTimesScale) {
  const auto dir = std::filesystem::temp_directory_path() / "ca_quant_tests";
  std::filesystem::create_directories(dir);
  const std::string file = (dir / "int8.safetensors").string();

  Rng rng(0xD00D);
  TransformerModel model(tiny_config(), rng);
  const Checkpoint ckpt = model.to_checkpoint();
  ckpt.save(file, DType::kI8);
  const Checkpoint loaded = Checkpoint::load(file);

  // Companions are folded back in: same tensor names, no .quant_scale.
  EXPECT_EQ(loaded.names(), ckpt.names());
  for (const auto& [name, tensor] : ckpt.tensors()) {
    const Tensor& got = loaded.at(name);
    ASSERT_EQ(got.numel(), tensor.numel()) << name;
    if (tensor.rank() == 2) {
      const QuantTensor qt = quantize_tensor(tensor, DType::kI8);
      const Tensor expected = dequantize_tensor(qt);
      for (std::int64_t i = 0; i < got.numel(); ++i) {
        EXPECT_EQ(got.data()[i], expected.data()[i]) << name << " @" << i;
      }
    } else {
      // Non-matrix tensors (rmsnorm vectors) stay exact fp32.
      for (std::int64_t i = 0; i < got.numel(); ++i) {
        EXPECT_EQ(got.data()[i], tensor.data()[i]) << name << " @" << i;
      }
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace chipalign
