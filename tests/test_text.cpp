// Tests for the character tokenizer.

#include <gtest/gtest.h>

#include "text/tokenizer.hpp"

namespace chipalign {
namespace {

TEST(Tokenizer, RoundTripsPrintableAscii) {
  const CharTokenizer& tok = tokenizer();
  const std::string text = "Hello, World! [UP] q: x?\nout: (y)";
  EXPECT_EQ(tok.decode(tok.encode(text)), text);
}

TEST(Tokenizer, SpecialTokensHaveReservedIds) {
  EXPECT_EQ(CharTokenizer::kPad, 0);
  EXPECT_EQ(CharTokenizer::kBos, 1);
  EXPECT_EQ(CharTokenizer::kEos, 2);
  EXPECT_EQ(CharTokenizer::kUnk, 3);
  const CharTokenizer& tok = tokenizer();
  EXPECT_TRUE(tok.is_special(CharTokenizer::kBos));
  EXPECT_FALSE(tok.is_special(tok.char_to_id('a')));
}

TEST(Tokenizer, BosEosFlags) {
  const CharTokenizer& tok = tokenizer();
  const auto plain = tok.encode("ab");
  ASSERT_EQ(plain.size(), 2u);
  const auto wrapped = tok.encode("ab", true, true);
  ASSERT_EQ(wrapped.size(), 4u);
  EXPECT_EQ(wrapped.front(), CharTokenizer::kBos);
  EXPECT_EQ(wrapped.back(), CharTokenizer::kEos);
}

TEST(Tokenizer, UnknownBytesMapToUnk) {
  const CharTokenizer& tok = tokenizer();
  const auto tokens = tok.encode("a\x80z");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1], CharTokenizer::kUnk);
  // Decode skips specials (including unk).
  EXPECT_EQ(tok.decode(tokens), "az");
}

TEST(Tokenizer, VocabularyCoversNewlineAndAllPrintables) {
  const CharTokenizer& tok = tokenizer();
  EXPECT_EQ(tok.vocab_size(), 4 + 1 + (0x7E - 0x20 + 1));
  EXPECT_NE(tok.char_to_id('\n'), CharTokenizer::kUnk);
  EXPECT_NE(tok.char_to_id(' '), CharTokenizer::kUnk);
  EXPECT_NE(tok.char_to_id('~'), CharTokenizer::kUnk);
  EXPECT_EQ(tok.char_to_id('\t'), CharTokenizer::kUnk);
}

TEST(Tokenizer, CharIdBijection) {
  const CharTokenizer& tok = tokenizer();
  for (int c = 0x20; c <= 0x7E; ++c) {
    const TokenId id = tok.char_to_id(static_cast<char>(c));
    EXPECT_EQ(tok.id_to_char(id), static_cast<char>(c));
  }
}

}  // namespace
}  // namespace chipalign
