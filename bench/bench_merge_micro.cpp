// Section III-C microbenchmark: merge cost vs parameter count.
//
// The paper claims O(n) time and space for ChipAlign; this google-benchmark
// binary measures wall time of every merge method across tensor sizes and
// fits the asymptotic complexity (expect oN for all of them, with different
// constants — the sparsifying methods pay extra for sorting/selection).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "merge/registry.hpp"
#include "model/checkpoint.hpp"
#include "tensor/tensor.hpp"
#include "util/mem_probe.hpp"
#include "util/rng.hpp"

namespace chipalign {
namespace {

Checkpoint single_tensor_checkpoint(std::int64_t numel, std::uint64_t seed) {
  Rng rng(seed);
  Checkpoint ckpt;
  ckpt.put("w", Tensor::randn({numel}, rng, 0.05F));
  return ckpt;
}

void run_method(benchmark::State& state, const std::string& method) {
  const auto numel = static_cast<std::int64_t>(state.range(0));
  const Checkpoint base = single_tensor_checkpoint(numel, 1);
  const Checkpoint chip = single_tensor_checkpoint(numel, 2);
  const Checkpoint instruct = single_tensor_checkpoint(numel, 3);

  const auto merger = create_merger(method);
  MergeOptions options;
  options.lambda = 0.6;

  for (auto _ : state) {
    Checkpoint merged = merge_checkpoints(
        *merger, chip, instruct, merger->requires_base() ? &base : nullptr,
        options);
    benchmark::DoNotOptimize(merged.at("w").data());
  }
  state.SetComplexityN(numel);
  state.SetItemsProcessed(state.iterations() * numel);
}

void BM_ChipAlign(benchmark::State& state) { run_method(state, "chipalign"); }
void BM_Lerp(benchmark::State& state) { run_method(state, "lerp"); }
void BM_ModelSoup(benchmark::State& state) { run_method(state, "modelsoup"); }
void BM_TaskArithmetic(benchmark::State& state) {
  run_method(state, "task_arithmetic");
}
void BM_Ties(benchmark::State& state) { run_method(state, "ties"); }
void BM_Della(benchmark::State& state) { run_method(state, "della"); }
void BM_Dare(benchmark::State& state) { run_method(state, "dare"); }

constexpr std::int64_t kMin = 1 << 12;
constexpr std::int64_t kMax = 1 << 20;

BENCHMARK(BM_ChipAlign)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_Lerp)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_ModelSoup)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_TaskArithmetic)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_Ties)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Complexity(benchmark::oNLogN);
BENCHMARK(BM_Della)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Complexity(benchmark::oNLogN);
BENCHMARK(BM_Dare)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Complexity(benchmark::oN);

/// Whole-checkpoint merge at realistic layer granularity (many tensors) to
/// exercise the per-tensor parallel driver path.
void BM_ChipAlignManyTensors(benchmark::State& state) {
  const auto tensors = static_cast<std::int64_t>(state.range(0));
  Rng rng(7);
  Checkpoint chip;
  Checkpoint instruct;
  for (std::int64_t i = 0; i < tensors; ++i) {
    const std::string name = "layer." + std::to_string(i) + ".w";
    chip.put(name, Tensor::randn({64, 64}, rng, 0.05F));
    instruct.put(name, Tensor::randn({64, 64}, rng, 0.05F));
  }
  const auto merger = create_merger("chipalign");
  MergeOptions options;
  for (auto _ : state) {
    Checkpoint merged =
        merge_checkpoints(*merger, chip, instruct, nullptr, options);
    benchmark::DoNotOptimize(merged.names());
  }
  state.SetComplexityN(tensors);
}
BENCHMARK(BM_ChipAlignManyTensors)->RangeMultiplier(4)->Range(4, 256)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace chipalign

// Expanded BENCHMARK_MAIN so the run ends with a peak-RSS report — the
// in-memory O(model) residency this measures is the baseline the streaming
// engine (bench_stream_merge) is bounded against.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  const std::uint64_t peak = chipalign::peak_rss_bytes();
  if (peak > 0) {
    std::printf("peak RSS: %s\n", chipalign::format_bytes(peak).c_str());
  }
  return 0;
}
