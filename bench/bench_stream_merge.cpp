// bench_stream_merge — streaming vs in-memory merge: wall clock, throughput
// and peak RSS, plus byte-identity checks between all three paths.
//
// The bench fabricates synthetic sharded checkpoints tensor-by-tensor (so
// fabrication itself stays small), then:
//   1. streams the merge through the three-stage pipelined engine under a
//      bounded in-flight budget and records the process peak RSS (VmHWM) —
//      which must stay under baseline + budget + a fixed overhead allowance;
//   2. streams the same merge through the strictly serial escape hatch
//      (pipeline = false) and gates the pipelined speedup at >= 1.3x
//      (skipped on single-core hosts, where no overlap win is possible);
//   3. runs the same merge through the in-memory path (load everything,
//      merge, save) — whose peak must strictly exceed the streaming peak;
//   4. verifies pipelined, serial, and in-memory outputs are byte-identical,
//      tensor by tensor.
//
// Exit status is non-zero when any of those checks fail, so the bench
// doubles as an acceptance gate. `--quick` shrinks the workload for CI.
// `--json FILE` additionally writes a machine-readable record of the
// timings and gate results, including the fault-injection status: the
// failpoint sites are compiled into this binary (the numbers include their
// disarmed-path cost, one relaxed atomic load per site) and stay disarmed
// unless CHIPALIGN_FAILPOINTS says otherwise.
//
// Usage: bench_stream_merge [--quick] [--method chipalign|ties|...]
//                           [--json FILE]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/safetensors.hpp"
#include "merge/registry.hpp"
#include "model/checkpoint.hpp"
#include "stream/shard_layout.hpp"
#include "stream/shard_writer.hpp"
#include "stream/streaming_merge.hpp"
#include "stream/tensor_source.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"
#include "util/mem_probe.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace chipalign;

namespace {

struct BenchConfig {
  int tensor_count = 48;
  std::int64_t rows = 1024;
  std::int64_t cols = 680;               // ~2.8 MB per tensor, ~133 MB total
  std::uint64_t shard_size_bytes = 16ull << 20;
  std::uint64_t max_inflight_bytes = 48ull << 20;
  // Allowance for everything outside the accounted working set: binary +
  // heap baseline growth, thread stacks, allocator slack.
  std::uint64_t overhead_bytes = 96ull << 20;
  int timing_runs = 2;  // per engine; the speedup uses the best of each
};

BenchConfig quick_config() {
  BenchConfig config;
  config.tensor_count = 24;
  config.rows = 768;
  config.cols = 512;                     // 1.5 MB per tensor, 36 MB total
  config.shard_size_bytes = 4u << 20;
  config.max_inflight_bytes = 48u << 20;
  config.overhead_bytes = 64ull << 20;
  config.timing_runs = 3;
  return config;
}

/// Writes one synthetic sharded checkpoint without ever holding more than a
/// single tensor in memory, so fabrication barely moves the RSS baseline.
void fabricate_checkpoint(const std::string& dir, const BenchConfig& bench,
                          std::uint64_t seed) {
  std::vector<std::pair<std::string, Shape>> entries;
  for (int i = 0; i < bench.tensor_count; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "layers.%03d.weight", i);
    entries.emplace_back(name, Shape{bench.rows, bench.cols});
  }
  ModelConfig config;
  config.name = "synthetic-" + std::to_string(seed);
  config.vocab_size = 1;
  config.d_model = bench.rows;
  config.n_layers = bench.tensor_count;
  config.n_heads = 1;
  config.n_kv_heads = 1;
  config.d_ff = bench.cols;
  config.max_seq_len = 1;

  ShardSetWriter writer(
      dir, plan_shards(entries, DType::kF32, bench.shard_size_bytes),
      checkpoint_metadata(config));
  std::map<std::string, std::string> checksums;
  for (const auto& [name, shape] : entries) {
    Rng rng(seed ^ xxh64(name));
    const Tensor tensor = Tensor::randn(shape, rng, 0.05F);
    const std::vector<std::uint8_t> bytes =
        encode_tensor_bytes(tensor, DType::kF32);
    checksums[name] = hash_to_hex(xxh64(bytes.data(), bytes.size()));
    writer.write_tensor(name, bytes);
  }
  writer.finish(checksums);
}

double mb(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    failpoint::arm_from_env();  // benches accept injected faults too
    bool quick = false;
    std::string method = "chipalign";
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        quick = true;
      } else if (std::strcmp(argv[i], "--method") == 0 && i + 1 < argc) {
        method = argv[++i];
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        json_path = argv[++i];
      } else {
        std::fprintf(stderr,
                     "usage: bench_stream_merge [--quick] [--method M] "
                     "[--json FILE]\n");
        return 2;
      }
    }
    const BenchConfig bench = quick ? quick_config() : BenchConfig{};
    const auto merger = create_merger(method);
    const std::string root =
        std::string("/tmp/ca_bench_stream_merge") + (quick ? "_quick" : "");
    std::filesystem::remove_all(root);

    const std::uint64_t tensor_bytes = static_cast<std::uint64_t>(
        bench.rows * bench.cols * static_cast<std::int64_t>(sizeof(float)));
    std::printf("bench_stream_merge (%s): %d tensors x %.1f MB = %.1f MB "
                "per model, method '%s'\n",
                quick ? "quick" : "full", bench.tensor_count, mb(tensor_bytes),
                mb(tensor_bytes * bench.tensor_count), method.c_str());

    Timer fab_timer;
    fabricate_checkpoint(root + "/chip", bench, 101);
    fabricate_checkpoint(root + "/instruct", bench, 202);
    if (merger->requires_base()) fabricate_checkpoint(root + "/base", bench,
                                                      303);
    std::printf("fabricated inputs in %.2f s\n", fab_timer.seconds());

    const MergeOptions options;
    const ShardedTensorSource chip = ShardedTensorSource::open(root + "/chip");
    const ShardedTensorSource instruct =
        ShardedTensorSource::open(root + "/instruct");
    ShardedTensorSource base;
    if (merger->requires_base()) {
      base = ShardedTensorSource::open(root + "/base");
    }
    const TensorSource* base_ptr = merger->requires_base() ? &base : nullptr;

    StreamingMergeConfig config;
    config.shard_size_bytes = bench.shard_size_bytes;
    config.max_inflight_bytes = bench.max_inflight_bytes;
    config.log_every = 0;

    auto stream_once = [&](bool pipeline, const std::string& out) {
      StreamingMergeConfig run_config = config;
      run_config.pipeline = pipeline;
      return merge_streaming(*merger, chip, instruct, base_ptr, options,
                             run_config, out);
    };

    // Phase 1: pipelined streaming (first, so its VmHWM is not masked by the
    // in-memory path's allocations — the kernel high-water mark only grows).
    const std::uint64_t baseline_rss = peak_rss_bytes();
    StreamingMergeReport report = stream_once(true, root + "/merged_streaming");
    double best_pipelined = report.seconds;
    for (int run = 1; run < bench.timing_runs; ++run) {
      best_pipelined = std::min(
          best_pipelined,
          stream_once(true, root + "/merged_streaming").seconds);
    }
    const std::uint64_t streaming_rss = peak_rss_bytes();
    std::printf(
        "[pipelined] %zu tensors -> %zu shard(s), %s written, %.1f MB/s in "
        "%.2f s (best of %d: %.2f s)\n",
        report.tensor_count, report.shard_count,
        format_bytes(report.bytes_written).c_str(), report.mb_per_second(),
        report.seconds, bench.timing_runs, best_pipelined);
    std::printf(
        "[pipelined] stage busy: read %.2f s, merge %.2f s, write %.2f s "
        "(%zu reads checksum-verified)\n",
        report.read_seconds, report.merge_seconds, report.write_seconds,
        report.source_checksums_verified);
    std::printf(
        "[pipelined] peak RSS %s (baseline %s, accounted in-flight max %s, "
        "budget %s)\n",
        format_bytes(streaming_rss).c_str(), format_bytes(baseline_rss).c_str(),
        format_bytes(report.max_inflight_bytes_observed).c_str(),
        format_bytes(config.max_inflight_bytes).c_str());

    // Phase 2: the strictly serial escape hatch, same workload.
    StreamingMergeReport serial_report =
        stream_once(false, root + "/merged_serial");
    double best_serial = serial_report.seconds;
    for (int run = 1; run < bench.timing_runs; ++run) {
      best_serial = std::min(
          best_serial, stream_once(false, root + "/merged_serial").seconds);
    }
    std::printf(
        "[serial]    %s written at %.1f MB/s in %.2f s (best of %d: %.2f s)\n",
        format_bytes(serial_report.bytes_written).c_str(),
        serial_report.mb_per_second(), serial_report.seconds,
        bench.timing_runs, best_serial);

    // Phase 3: in-memory.
    Timer mem_timer;
    const Checkpoint chip_mem = load_sharded_checkpoint(root + "/chip");
    const Checkpoint instruct_mem = load_sharded_checkpoint(root + "/instruct");
    Checkpoint base_mem;
    if (merger->requires_base()) {
      base_mem = load_sharded_checkpoint(root + "/base");
    }
    const Checkpoint merged =
        merge_checkpoints(*merger, chip_mem, instruct_mem,
                          merger->requires_base() ? &base_mem : nullptr,
                              options);
    merged.save(root + "/merged_inmemory.safetensors", DType::kF32);
    const std::uint64_t inmemory_rss = peak_rss_bytes();
    std::printf("[in-memory] merged + saved in %.2f s, peak RSS %s\n",
                mem_timer.seconds(), format_bytes(inmemory_rss).c_str());

    // Phase 4: byte-identity between all three outputs.
    const ShardedTensorSource streamed =
        ShardedTensorSource::open(root + "/merged_streaming");
    const ShardedTensorSource serial =
        ShardedTensorSource::open(root + "/merged_serial");
    std::size_t identical = 0;
    for (const auto& [name, tensor] : merged.tensors()) {
      const std::vector<std::uint8_t> expected =
          encode_tensor_bytes(tensor, DType::kF32);
      if (streamed.read_bytes(name) == expected &&
          serial.read_bytes(name) == expected) {
        ++identical;
      }
    }
    const bool bytes_ok = identical == merged.tensors().size() &&
                          identical == streamed.names().size() &&
                          identical == serial.names().size();
    std::printf("byte-identity: %zu/%zu tensors identical across pipelined/"
                "serial/in-memory -> %s\n",
                identical, merged.tensors().size(), bytes_ok ? "OK" : "FAIL");

    bool ok = bytes_ok;

    // Gate: pipelining must buy >= 1.3x wall clock over the serial engine.
    // On a single hardware thread there is nothing to overlap with, so the
    // gate is reported as skipped rather than failed.
    const unsigned hw_threads = std::thread::hardware_concurrency();
    const double speedup =
        best_pipelined > 0.0 ? best_serial / best_pipelined : 0.0;
    const char* speedup_gate = "skipped (1 core)";
    if (hw_threads >= 2) {
      const bool speedup_ok = speedup >= 1.3;
      speedup_gate = speedup_ok ? "pass" : "fail";
      std::printf("pipelined speedup %.2fx over serial (>= 1.3x, %u hw "
                  "threads) -> %s\n",
                  speedup, hw_threads, speedup_ok ? "OK" : "FAIL");
      ok = ok && speedup_ok;
    } else {
      std::printf("pipelined speedup %.2fx over serial — gate skipped "
                  "(single-core host)\n", speedup);
    }

    const char* budget_gate = "skipped (no /proc/self/status)";
    const char* below_inmemory_gate = "skipped (no /proc/self/status)";
    if (peak_rss_bytes() == 0) {
      std::printf("peak-RSS checks skipped (no /proc/self/status)\n");
    } else {
      const std::uint64_t bound =
          baseline_rss + config.max_inflight_bytes + bench.overhead_bytes;
      const bool budget_ok = streaming_rss <= bound;
      budget_gate = budget_ok ? "pass" : "fail";
      std::printf("streaming peak %s <= baseline + budget + overhead %s -> "
                  "%s\n",
                  format_bytes(streaming_rss).c_str(),
                  format_bytes(bound).c_str(), budget_ok ? "OK" : "FAIL");
      const bool below_inmemory = streaming_rss < inmemory_rss;
      below_inmemory_gate = below_inmemory ? "pass" : "fail";
      std::printf("streaming peak %s < in-memory peak %s -> %s\n",
                  format_bytes(streaming_rss).c_str(),
                  format_bytes(inmemory_rss).c_str(),
                  below_inmemory ? "OK" : "FAIL");
      ok = ok && budget_ok && below_inmemory;
    }

    if (!json_path.empty()) {
      // The failpoints block records that fault-injection sites are
      // compiled into these numbers (their disarmed cost is included) and
      // whether anything was armed while measuring.
      const char* env = std::getenv("CHIPALIGN_FAILPOINTS");
      std::ofstream json(json_path, std::ios::trunc);
      CA_CHECK(json.good(), "cannot write '" << json_path << "'");
      json << "{\n"
           << "  \"bench\": \"stream_merge\",\n"
           << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n"
           << "  \"method\": \"" << method << "\",\n"
           << "  \"tensor_count\": " << bench.tensor_count << ",\n"
           << "  \"pipelined_best_s\": " << best_pipelined << ",\n"
           << "  \"serial_best_s\": " << best_serial << ",\n"
           << "  \"speedup\": " << speedup << ",\n"
           << "  \"baseline_rss_bytes\": " << baseline_rss << ",\n"
           << "  \"streaming_peak_rss_bytes\": " << streaming_rss << ",\n"
           << "  \"inmemory_peak_rss_bytes\": " << inmemory_rss << ",\n"
           << "  \"failpoints\": {\n"
           << "    \"compiled\": true,\n"
           << "    \"site_count\": " << failpoint::all_sites().size() << ",\n"
           << "    \"armed\": \"" << (env != nullptr ? env : "") << "\"\n"
           << "  },\n"
           << "  \"gates\": {\n"
           << "    \"byte_identity\": \"" << (bytes_ok ? "pass" : "fail")
           << "\",\n"
           << "    \"pipelined_speedup\": \"" << speedup_gate << "\",\n"
           << "    \"rss_budget\": \"" << budget_gate << "\",\n"
           << "    \"streaming_below_inmemory\": \"" << below_inmemory_gate
           << "\"\n"
           << "  }\n"
           << "}\n";
      std::printf("wrote %s\n", json_path.c_str());
    }

    std::filesystem::remove_all(root);
    return ok ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
