// bench_stream_merge — streaming vs in-memory merge: wall clock, throughput
// and peak RSS, plus a byte-identity check between the two paths.
//
// The bench fabricates synthetic sharded checkpoints tensor-by-tensor (so
// fabrication itself stays small), then:
//   1. streams the merge under a bounded in-flight budget and records the
//      process peak RSS (VmHWM) — which must stay under
//      baseline + budget + a fixed overhead allowance;
//   2. runs the same merge through the in-memory path (load everything,
//      merge, save) — whose peak must strictly exceed the streaming peak;
//   3. verifies the two outputs are byte-identical, tensor by tensor.
//
// Exit status is non-zero when any of those checks fail, so the bench
// doubles as an acceptance gate. `--quick` shrinks the workload for CI.
//
// Usage: bench_stream_merge [--quick] [--method chipalign|ties|...]

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "io/safetensors.hpp"
#include "merge/registry.hpp"
#include "model/checkpoint.hpp"
#include "stream/shard_layout.hpp"
#include "stream/shard_writer.hpp"
#include "stream/streaming_merge.hpp"
#include "stream/tensor_source.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/mem_probe.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace chipalign;

namespace {

struct BenchConfig {
  int tensor_count = 48;
  std::int64_t rows = 1024;
  std::int64_t cols = 680;               // ~2.8 MB per tensor, ~133 MB total
  std::uint64_t shard_size_bytes = 16ull << 20;
  std::uint64_t max_inflight_bytes = 48ull << 20;
  // Allowance for everything outside the accounted working set: binary +
  // heap baseline growth, thread stacks, allocator slack.
  std::uint64_t overhead_bytes = 96ull << 20;
};

BenchConfig quick_config() {
  BenchConfig config;
  config.tensor_count = 16;
  config.rows = 256;
  config.cols = 256;                     // 256 KB per tensor, 4 MB total
  config.shard_size_bytes = 1u << 20;
  config.max_inflight_bytes = 2u << 20;
  config.overhead_bytes = 64ull << 20;
  return config;
}

/// Writes one synthetic sharded checkpoint without ever holding more than a
/// single tensor in memory, so fabrication barely moves the RSS baseline.
void fabricate_checkpoint(const std::string& dir, const BenchConfig& bench,
                          std::uint64_t seed) {
  std::vector<std::pair<std::string, Shape>> entries;
  for (int i = 0; i < bench.tensor_count; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "layers.%03d.weight", i);
    entries.emplace_back(name, Shape{bench.rows, bench.cols});
  }
  ModelConfig config;
  config.name = "synthetic-" + std::to_string(seed);
  config.vocab_size = 1;
  config.d_model = bench.rows;
  config.n_layers = bench.tensor_count;
  config.n_heads = 1;
  config.n_kv_heads = 1;
  config.d_ff = bench.cols;
  config.max_seq_len = 1;

  ShardSetWriter writer(
      dir, plan_shards(entries, DType::kF32, bench.shard_size_bytes),
      checkpoint_metadata(config));
  std::map<std::string, std::string> checksums;
  for (const auto& [name, shape] : entries) {
    Rng rng(seed ^ xxh64(name));
    const Tensor tensor = Tensor::randn(shape, rng, 0.05F);
    const std::vector<std::uint8_t> bytes =
        encode_tensor_bytes(tensor, DType::kF32);
    checksums[name] = hash_to_hex(xxh64(bytes.data(), bytes.size()));
    writer.write_tensor(name, bytes);
  }
  writer.finish(checksums);
}

double mb(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bool quick = false;
    std::string method = "chipalign";
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        quick = true;
      } else if (std::strcmp(argv[i], "--method") == 0 && i + 1 < argc) {
        method = argv[++i];
      } else {
        std::fprintf(stderr,
                     "usage: bench_stream_merge [--quick] [--method M]\n");
        return 2;
      }
    }
    const BenchConfig bench = quick ? quick_config() : BenchConfig{};
    const auto merger = create_merger(method);
    const std::string root =
        std::string("/tmp/ca_bench_stream_merge") + (quick ? "_quick" : "");
    std::filesystem::remove_all(root);

    const std::uint64_t tensor_bytes = static_cast<std::uint64_t>(
        bench.rows * bench.cols * static_cast<std::int64_t>(sizeof(float)));
    std::printf("bench_stream_merge (%s): %d tensors x %.1f MB = %.1f MB "
                "per model, method '%s'\n",
                quick ? "quick" : "full", bench.tensor_count, mb(tensor_bytes),
                mb(tensor_bytes * bench.tensor_count), method.c_str());

    Timer fab_timer;
    fabricate_checkpoint(root + "/chip", bench, 101);
    fabricate_checkpoint(root + "/instruct", bench, 202);
    if (merger->requires_base()) fabricate_checkpoint(root + "/base", bench, 303);
    std::printf("fabricated inputs in %.2f s\n", fab_timer.seconds());

    const MergeOptions options;

    // Phase 1: streaming (first, so its VmHWM is not masked by the
    // in-memory path's allocations — the kernel high-water mark only grows).
    const std::uint64_t baseline_rss = peak_rss_bytes();
    StreamingMergeConfig config;
    config.shard_size_bytes = bench.shard_size_bytes;
    config.max_inflight_bytes = bench.max_inflight_bytes;
    const ShardedTensorSource chip = ShardedTensorSource::open(root + "/chip");
    const ShardedTensorSource instruct =
        ShardedTensorSource::open(root + "/instruct");
    ShardedTensorSource base;
    if (merger->requires_base()) {
      base = ShardedTensorSource::open(root + "/base");
    }
    const StreamingMergeReport report = merge_streaming(
        *merger, chip, instruct, merger->requires_base() ? &base : nullptr,
        options, config, root + "/merged_streaming");
    const std::uint64_t streaming_rss = peak_rss_bytes();
    std::printf(
        "[streaming] %zu tensors -> %zu shard(s), %s written, %.1f MB/s in "
        "%.2f s\n",
        report.tensor_count, report.shard_count,
        format_bytes(report.bytes_written).c_str(), report.mb_per_second(),
        report.seconds);
    std::printf(
        "[streaming] peak RSS %s (baseline %s, accounted in-flight max %s, "
        "budget %s)\n",
        format_bytes(streaming_rss).c_str(), format_bytes(baseline_rss).c_str(),
        format_bytes(report.max_inflight_bytes_observed).c_str(),
        format_bytes(config.max_inflight_bytes).c_str());

    // Phase 2: in-memory.
    Timer mem_timer;
    const Checkpoint chip_mem = load_sharded_checkpoint(root + "/chip");
    const Checkpoint instruct_mem = load_sharded_checkpoint(root + "/instruct");
    Checkpoint base_mem;
    if (merger->requires_base()) {
      base_mem = load_sharded_checkpoint(root + "/base");
    }
    const Checkpoint merged =
        merge_checkpoints(*merger, chip_mem, instruct_mem,
                          merger->requires_base() ? &base_mem : nullptr, options);
    merged.save(root + "/merged_inmemory.safetensors", DType::kF32);
    const std::uint64_t inmemory_rss = peak_rss_bytes();
    std::printf("[in-memory] merged + saved in %.2f s, peak RSS %s\n",
                mem_timer.seconds(), format_bytes(inmemory_rss).c_str());

    // Phase 3: byte-identity between the two outputs.
    const ShardedTensorSource streamed =
        ShardedTensorSource::open(root + "/merged_streaming");
    std::size_t identical = 0;
    for (const auto& [name, tensor] : merged.tensors()) {
      if (streamed.read_bytes(name) == encode_tensor_bytes(tensor, DType::kF32)) {
        ++identical;
      }
    }
    const bool bytes_ok = identical == merged.tensors().size() &&
                          identical == streamed.names().size();
    std::printf("byte-identity: %zu/%zu tensors identical -> %s\n", identical,
                merged.tensors().size(), bytes_ok ? "OK" : "FAIL");

    bool ok = bytes_ok;
    if (peak_rss_bytes() == 0) {
      std::printf("peak-RSS checks skipped (no /proc/self/status)\n");
    } else {
      const std::uint64_t bound =
          baseline_rss + config.max_inflight_bytes + bench.overhead_bytes;
      const bool budget_ok = streaming_rss <= bound;
      std::printf("streaming peak %s <= baseline + budget + overhead %s -> %s\n",
                  format_bytes(streaming_rss).c_str(),
                  format_bytes(bound).c_str(), budget_ok ? "OK" : "FAIL");
      const bool below_inmemory = streaming_rss < inmemory_rss;
      std::printf("streaming peak %s < in-memory peak %s -> %s\n",
                  format_bytes(streaming_rss).c_str(),
                  format_bytes(inmemory_rss).c_str(),
                  below_inmemory ? "OK" : "FAIL");
      ok = ok && budget_ok && below_inmemory;
    }

    std::filesystem::remove_all(root);
    return ok ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
