// Figure 7 reproduction: multiple-choice chip QA accuracy per domain
// (EDA scripts / bugs / circuits), closed book, no instructions.
//
// Shape to check: ChipAlign ~ ChipNeMo on every domain (domain knowledge is
// preserved through the merge), with Chat well below both.

#include <cstdio>
#include <string>
#include <vector>

#include "core/backbones.hpp"
#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"
#include "eval/qa_runner.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

int main() {
  using namespace chipalign;
  set_log_level(LogLevel::kInfo);
  std::printf(
      "== ChipAlign reproduction: Figure 7 (multi-choice chip QA accuracy) "
      "==\n\n");
  Timer timer;

  ModelZoo zoo;
  const EvalSuite suite = build_eval_suite(zoo.facts());
  const BackboneSpec spec = industrial_backbone();

  const Checkpoint base = zoo.base(spec);
  const Checkpoint chat = zoo.instruct(spec);
  const Checkpoint chipnemo = zoo.chip(spec);
  const Checkpoint chipalign = run_merge("chipalign", chipnemo, chat, base,
                                         0.6);

  struct Row {
    std::string label;
    const Checkpoint* checkpoint;
  };
  const std::vector<Row> rows = {
      {"LLaMA2-70B*-Chat", &chat},
      {"LLaMA2-70B*-ChipNeMo", &chipnemo},
      {"LLaMA2-70B*-ChipAlign", &chipalign},
  };

  // Figure 7's domains: "EDA scripts" maps to our Functionality facts.
  TablePrinter table({"Method", "EDA scripts", "Bugs", "Circuits", "Mean"});
  for (const Row& row : rows) {
    TransformerModel model = TransformerModel::from_checkpoint(*row.checkpoint);
    const CategoryScores scores = run_mcq_eval(model, suite.mcq);
    auto get = [&](const std::string& key) {
      const auto it = scores.by_category.find(key);
      return it != scores.by_category.end() ? it->second : 0.0;
    };
    table.add_row({row.label, TablePrinter::pct(get("Functionality")),
                   TablePrinter::pct(get("Bugs")),
                   TablePrinter::pct(get("Circuits")),
                   TablePrinter::pct(scores.all)});
  }
  table.print();

  std::printf("\n(accuracy %%, 4-way choices scored by mean log-likelihood; "
              "total %.1f s)\n",
              timer.seconds());
  return 0;
}
