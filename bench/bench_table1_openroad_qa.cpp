// Table 1 reproduction: ROUGE-L on the OpenROAD-style QA benchmark.
//
// For each backbone (LLaMA3-8B analog, Qwen1.5-14B analog):
//   rows    — extractive reference (GPT-4-Turbo / RAG-EDA stand-in), the
//             instruct model, the EDA model, and every merge method;
//   columns — golden-context and RAG-context, each split into the three
//             category groups (Functionality / VLSI Flow / GUI & Install &
//             Test) plus the overall mean.
//
// Absolute values differ from the paper (tiny models, synthetic corpus); the
// shapes to check are: merged >= EDA on "All", ChipAlign at or near the top
// of the merged rows, and RAG <= golden for every model.

#include <cstdio>
#include <string>
#include <vector>

#include "core/backbones.hpp"
#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"
#include "data/corpus.hpp"
#include "eval/metrics.hpp"
#include "eval/qa_runner.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace chipalign {
namespace {

const std::vector<std::string> kCategories = {"Functionality", "VLSI Flow",
                                              "GUI & Install & Test"};

std::vector<std::string> score_cells(const CategoryScores& scores) {
  std::vector<std::string> cells;
  for (const std::string& category : kCategories) {
    const auto it = scores.by_category.find(category);
    cells.push_back(
        TablePrinter::fmt(it != scores.by_category.end() ? it->second : 0.0));
  }
  cells.push_back(TablePrinter::fmt(scores.all));
  return cells;
}

/// Extractive reference baseline (stands in for the paper's GPT-4 Turbo /
/// RAG-EDA rows): replies with the context sentence most similar to the
/// question. Strong on content, oblivious to instructions.
CategoryScores extractive_reference(const std::vector<QaEvalItem>& items,
                                    const RetrievalPipeline* rag) {
  std::map<std::string, double> sums;
  std::map<std::string, int> counts;
  double total = 0.0;
  for (const QaEvalItem& item : items) {
    std::string response = item.golden_context;
    if (rag != nullptr) {
      const auto texts = rag->retrieve_texts(item.question, 1);
      response = texts.empty() ? "" : texts[0];
    }
    const double score = rouge_l(response, item.golden_answer);
    sums[domain_name(item.domain)] += score;
    ++counts[domain_name(item.domain)];
    total += score;
  }
  CategoryScores out;
  for (const auto& [category, sum] : sums) {
    out.by_category[category] = sum / counts[category];
    out.counts[category] = counts[category];
  }
  out.all = total / static_cast<double>(items.size());
  return out;
}

void add_model_row(TablePrinter& table, const std::string& label,
                   const Checkpoint& checkpoint,
                   const std::vector<QaEvalItem>& items,
                   const RetrievalPipeline& rag) {
  TransformerModel model = TransformerModel::from_checkpoint(checkpoint);
  const CategoryScores golden = run_openroad_eval(model, items, nullptr);
  const CategoryScores ragged = run_openroad_eval(model, items, &rag);
  std::vector<std::string> cells = {label};
  for (const std::string& cell : score_cells(golden)) cells.push_back(cell);
  for (const std::string& cell : score_cells(ragged)) cells.push_back(cell);
  table.add_row(std::move(cells));
}

void run_backbone(ModelZoo& zoo, const BackboneSpec& spec,
                  const EvalSuite& suite, const std::string& display) {
  std::printf("\n### Table 1 — %s family\n\n", display.c_str());

  const Checkpoint base = zoo.base(spec);
  const Checkpoint instruct = zoo.instruct(spec);
  const Checkpoint chip = zoo.chip(spec);

  TablePrinter table({"Method", "G:Func", "G:Flow", "G:GUI", "G:All",
                      "R:Func", "R:Flow", "R:GUI", "R:All"});

  // External reference rows (extractive, not a model).
  {
    const CategoryScores golden = extractive_reference(suite.openroad, nullptr);
    const CategoryScores ragged =
        extractive_reference(suite.openroad, suite.rag.get());
    std::vector<std::string> cells = {"ExtractiveRef"};
    for (const std::string& cell : score_cells(golden)) cells.push_back(cell);
    for (const std::string& cell : score_cells(ragged)) cells.push_back(cell);
    table.add_row(std::move(cells));
  }

  add_model_row(table, display + "-Instruct", instruct, suite.openroad,
                *suite.rag);
  add_model_row(table, display + "-EDA", chip, suite.openroad, *suite.rag);

  for (const std::string& method :
       {"task_arithmetic", "ties", "della", "dare", "modelsoup", "chipalign"}) {
    const Checkpoint merged = run_merge(method, chip, instruct, base, 0.6);
    add_model_row(table, display + "-" + method, merged, suite.openroad,
                  *suite.rag);
  }
  table.print();
}

}  // namespace
}  // namespace chipalign

int main() {
  using namespace chipalign;
  set_log_level(LogLevel::kInfo);
  std::printf("== ChipAlign reproduction: Table 1 (OpenROAD QA, ROUGE-L) ==\n");
  Timer timer;

  ModelZoo zoo;
  const EvalSuite suite = build_eval_suite(zoo.facts());
  run_backbone(zoo, openroad_backbone_a(), suite, "LLaMA3-8B*");
  run_backbone(zoo, openroad_backbone_b(), suite, "Qwen1.5-14B*");

  std::printf("\n(total %.1f s; * = tiny analog backbone, see DESIGN.md)\n",
              timer.seconds());
  return 0;
}
