// bench_rag — the production retrieval subsystem (src/rag).
//
// Builds hybrid retrieval indexes over synthetic documentation corpora at
// fact-base sizes 1k / 100k / 1M (reduced in --quick) and measures, per
// tier: index build time, persisted save/load time, and batched queries/s
// for BM25, the exact dense scan, the IVF dense path and the fused hybrid
// pipeline.
//
// Correctness is fatal in every mode:
//
//   persist   rankings from a loaded index are bitwise-identical (doc ids
//             AND scores) to the in-memory build it was saved from.
//   batch     retrieve_batch across the thread pool is bitwise-identical
//             to serial retrieve() per query.
//
// Gates (--gate):
//
//   rag_ann_recall    IVF recall@10 vs the exact dense scan >= 0.95 at the
//                     100k-doc tier (the ANN trade-off knob is nprobe).
//   rag_ann_speedup   IVF dense queries/s >= 3x the exact scan at 100k
//                     docs — the algorithmic win, independent of cores.
//
//   bench_rag            full sizes, report only
//   bench_rag --gate     full sizes, enforce the gates (exit 1 on miss)
//   bench_rag --quick    tiny sizes, no gates (CI smoke / sanitizers)
//   bench_rag --json P   also write a machine-readable summary to P

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "rag/retrieval.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace chipalign;

namespace {

struct Tier {
  std::size_t docs = 0;
  std::size_t embed_dim = 256;
  std::size_t ann_nlist = 0;  ///< 0 = auto (~sqrt(N))
  std::size_t queries = 256;
  bool persist = true;  ///< run the save/load identity phase
};

struct Sizes {
  std::vector<Tier> tiers;
  std::size_t recall_tier = 1;  ///< index into tiers for the ANN gates
  std::size_t nprobe = 8;
  std::size_t top_k = 10;
};

Sizes full_sizes() {
  Sizes s;
  // 1M keeps dim/queries modest (the point is scale, not feature width)
  // and skips the persist phase to bound the bench's disk footprint.
  s.tiers = {{1'000, 256, 0, 256, true},
             {100'000, 256, 0, 256, true},
             {1'000'000, 64, 256, 64, false}};
  s.recall_tier = 1;
  // ~sqrt(100k) = 316 partitions; probing 32 (~10%) clears recall 0.95
  // while keeping the ANN scan well above the 3x throughput floor.
  s.nprobe = 32;
  return s;
}

Sizes quick_sizes() {
  Sizes s;
  s.tiers = {{200, 64, 0, 32, true}, {2'000, 64, 0, 64, true}};
  s.recall_tier = 1;
  s.nprobe = 12;
  return s;
}

/// Deterministic synthetic documentation corpus: templated sentences over a
/// shared vocabulary plus a rare per-document identifier token, so queries
/// have both common-word and rare-term structure like the real fact base.
std::vector<std::string> synth_corpus(std::size_t count) {
  static const char* kSubjects[] = {"command", "stage", "panel", "signal",
                                    "macro",   "net",   "clock", "driver"};
  static const char* kVerbs[] = {"routes", "checks", "reports", "updates",
                                 "exports", "buffers", "places", "syncs"};
  static const char* kObjects[] = {"the nets", "the timing arcs",
                                   "the floorplan", "the scan chains",
                                   "the power grid", "the netlist",
                                   "the constraints", "the clock tree"};
  static const char* kModes[] = {"fast", "safe", "verbose", "batch",
                                 "strict", "legacy", "debug", "quiet"};
  Rng rng(0xC0FFEE ^ count);
  std::vector<std::string> docs;
  docs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string doc = "the ";
    doc += kSubjects[rng.uniform_index(8)];
    doc += " op" + std::to_string(i) + " ";
    doc += kVerbs[rng.uniform_index(8)];
    doc += " ";
    doc += kObjects[rng.uniform_index(8)];
    doc += " in ";
    doc += kModes[rng.uniform_index(8)];
    doc += " mode";
    docs.push_back(std::move(doc));
  }
  return docs;
}

/// Queries referencing real documents (by their rare token) with phrasing
/// noise, so both retriever halves have work to do.
std::vector<std::string> synth_queries(std::size_t count,
                                       std::size_t corpus_size) {
  Rng rng(0xBEEF ^ count);
  std::vector<std::string> queries;
  queries.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    const std::size_t doc = rng.uniform_index(corpus_size);
    queries.push_back("what does op" + std::to_string(doc) +
                      " do with the clock nets");
  }
  return queries;
}

bool hits_equal(const std::vector<std::vector<RetrievalHit>>& a,
                const std::vector<std::vector<RetrievalHit>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      if (a[i][j].doc_index != b[i][j].doc_index ||
          a[i][j].score != b[i][j].score) {
        return false;
      }
    }
  }
  return true;
}

struct GateResult {
  std::string name;
  double value = 0.0;
  double floor = 0.0;
  bool skipped = false;
  std::string skip_reason;
  bool pass() const { return skipped || value >= floor; }
};

void print_gate(const GateResult& g) {
  if (g.skipped) {
    std::printf("{\"gate\":\"%s\",\"status\":\"skip\",\"reason\":\"%s\"}\n",
                g.name.c_str(), g.skip_reason.c_str());
  } else {
    std::printf(
        "{\"gate\":\"%s\",\"value\":%.3f,\"floor\":%.3f,\"status\":\"%s\"}\n",
        g.name.c_str(), g.value, g.floor, g.pass() ? "pass" : "fail");
  }
}

struct TierReport {
  std::size_t docs = 0;
  double build_s = 0.0;
  double save_s = 0.0;
  double load_s = 0.0;
  double hybrid_qps = 0.0;
  double bm25_qps = 0.0;
  double dense_exact_qps = 0.0;
  double dense_ann_qps = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool gate = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const Sizes sizes = quick ? quick_sizes() : full_sizes();
  ThreadPool& pool = global_thread_pool();
  std::printf("{\"bench\":\"rag\",\"threads\":%zu,\"quick\":%s}\n",
              pool.size(), quick ? "true" : "false");

  const std::string index_path = "bench_rag_index.bin";
  bool persist_identical = true;
  bool batch_identical = true;
  double ann_recall = 1.0;
  double ann_speedup = 0.0;
  std::vector<TierReport> reports;

  for (std::size_t t = 0; t < sizes.tiers.size(); ++t) {
    const Tier& tier = sizes.tiers[t];
    TierReport report;
    report.docs = tier.docs;
    const auto corpus = synth_corpus(tier.docs);
    const auto queries = synth_queries(tier.queries, tier.docs);

    // Every tier gets an ANN partition: RetrievalPipeline treats nlist 0 as
    // "no ANN", so resolve the auto size (~sqrt(N)) here when unset.
    RetrievalConfig build_config;
    build_config.embed_dim = tier.embed_dim;
    build_config.ann_nprobe = sizes.nprobe;
    build_config.ann_nlist =
        tier.ann_nlist != 0
            ? tier.ann_nlist
            : static_cast<std::size_t>(
                  std::max(1.0, std::sqrt(static_cast<double>(tier.docs))));

    Timer build_timer;
    const RetrievalPipeline pipeline(corpus, build_config);
    report.build_s = build_timer.seconds();

    // -- batched == serial (fatal) ------------------------------------------
    const auto batched = pipeline.retrieve_batch(queries, sizes.top_k, &pool);
    std::vector<std::vector<RetrievalHit>> serial(queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      serial[q] = pipeline.retrieve(queries[q], sizes.top_k);
    }
    if (!hits_equal(batched, serial)) batch_identical = false;

    // -- persisted load == in-memory build (fatal) --------------------------
    if (tier.persist) {
      Timer save_timer;
      pipeline.save(index_path);
      report.save_s = save_timer.seconds();
      Timer load_timer;
      const RetrievalPipeline loaded =
          RetrievalPipeline::load(index_path, build_config);
      report.load_s = load_timer.seconds();
      const auto reloaded = loaded.retrieve_batch(queries, sizes.top_k, &pool);
      if (!hits_equal(batched, reloaded)) persist_identical = false;
      std::remove(index_path.c_str());
    }

    // -- throughput ---------------------------------------------------------
    // Best-of-3 passes: the trend checker gates these numbers, and a
    // single pass over a small tier is one scheduler hiccup away from a
    // spurious 20% dip.
    const auto qps = [&](auto&& fn) {
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        Timer timer;
        fn();
        const double s = timer.seconds();
        if (s > 0.0) {
          best = std::max(best, static_cast<double>(queries.size()) / s);
        }
      }
      return best;
    };
    report.hybrid_qps = qps([&] {
      (void)pipeline.retrieve_batch(queries, sizes.top_k, &pool);
    });
    report.bm25_qps = qps([&] {
      for (const auto& q : queries) (void)pipeline.bm25().query(q, sizes.top_k);
    });
    report.dense_exact_qps = qps([&] {
      for (const auto& q : queries) {
        (void)pipeline.dense().query(q, sizes.top_k);
      }
    });
    report.dense_ann_qps = qps([&] {
      for (const auto& q : queries) {
        (void)pipeline.ann().query(pipeline.dense().embedder().embed(q),
                                   sizes.top_k, sizes.nprobe,
                                   pipeline.dense().embeddings());
      }
    });

    // -- ANN recall vs the exact dense scan (gated tier only) ---------------
    if (t == sizes.recall_tier) {
      double recall_sum = 0.0;
      std::size_t recall_n = 0;
      for (const auto& q : queries) {
        const auto exact = pipeline.dense().query(q, sizes.top_k);
        if (exact.empty()) continue;
        const auto approx = pipeline.ann().query(
            pipeline.dense().embedder().embed(q), sizes.top_k, sizes.nprobe,
            pipeline.dense().embeddings());
        std::set<std::size_t> approx_ids;
        for (const auto& hit : approx) approx_ids.insert(hit.doc_index);
        std::size_t found = 0;
        for (const auto& hit : exact) found += approx_ids.count(hit.doc_index);
        recall_sum +=
            static_cast<double>(found) / static_cast<double>(exact.size());
        ++recall_n;
      }
      ann_recall = recall_n > 0 ? recall_sum / recall_n : 1.0;
      ann_speedup = report.dense_exact_qps > 0.0
                        ? report.dense_ann_qps / report.dense_exact_qps
                        : 0.0;
    }

    std::printf(
        "{\"bench\":\"rag_tier\",\"docs\":%zu,\"build_s\":%.3f,"
        "\"save_s\":%.3f,\"load_s\":%.3f,\"hybrid_qps\":%.1f,"
        "\"bm25_qps\":%.1f,\"dense_exact_qps\":%.1f,\"dense_ann_qps\":%.1f}"
        "\n",
        report.docs, report.build_s, report.save_s, report.load_s,
        report.hybrid_qps, report.bm25_qps, report.dense_exact_qps,
        report.dense_ann_qps);
    reports.push_back(report);
  }

  std::vector<GateResult> gates;
  gates.push_back({"rag_ann_recall", ann_recall, 0.95, false, {}});
  gates.push_back({"rag_ann_speedup", ann_speedup, 3.0, false, {}});

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_rag: cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f, "{\n  \"quick\": %s,\n", quick ? "true" : "false");
    for (const TierReport& r : reports) {
      std::fprintf(f,
                   "  \"docs%zu\": {\"build_s\": %.3f, \"save_s\": %.3f, "
                   "\"load_s\": %.3f, \"hybrid_qps\": %.1f, \"bm25_qps\": "
                   "%.1f, \"dense_exact_qps\": %.1f, \"dense_ann_qps\": "
                   "%.1f},\n",
                   r.docs, r.build_s, r.save_s, r.load_s, r.hybrid_qps,
                   r.bm25_qps, r.dense_exact_qps, r.dense_ann_qps);
    }
    std::fprintf(f,
                 "  \"ann_recall_at_%zu\": %.4f,\n"
                 "  \"ann_speedup\": %.2f,\n"
                 "  \"persist_identical\": %s,\n"
                 "  \"batch_identical\": %s,\n"
                 "  \"gates\": {\n",
                 sizes.top_k, ann_recall, ann_speedup,
                 persist_identical ? "true" : "false",
                 batch_identical ? "true" : "false");
    for (std::size_t i = 0; i < gates.size(); ++i) {
      const GateResult& g = gates[i];
      std::fprintf(f,
                   "    \"%s\": {\"value\": %.4f, \"floor\": %.4f, "
                   "\"status\": \"%s\"}%s\n",
                   g.name.c_str(), g.value, g.floor,
                   g.skipped ? ("skipped (" + g.skip_reason + ")").c_str()
                             : (g.pass() ? "pass" : "fail"),
                   i + 1 < gates.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
  }

  // A retrieval stack that changes rankings when persisted or batched is
  // broken, not slow — fatal in every mode.
  if (!persist_identical) {
    std::fprintf(stderr,
                 "bench_rag: FAILED (loaded index rankings differ from the "
                 "in-memory build)\n");
    return 1;
  }
  if (!batch_identical) {
    std::fprintf(stderr,
                 "bench_rag: FAILED (batched retrieval differs from serial)"
                 "\n");
    return 1;
  }

  if (gate) {
    bool ok = true;
    for (const GateResult& g : gates) {
      print_gate(g);
      if (!g.pass()) {
        std::fprintf(stderr, "GATE MISS: %s %.3f < required %.3f\n",
                     g.name.c_str(), g.value, g.floor);
        ok = false;
      }
    }
    if (!ok) {
      std::fprintf(stderr, "bench_rag: FAILED (retrieval gate)\n");
      return 1;
    }
    std::printf("{\"gate\":\"pass\"}\n");
  }
  return 0;
}
