// Figure 2 reproduction: normalized capability profile ("radar chart") of
// the LLaMA2-70B-analog variants — Chat, ChipNeMo, ChipAlign — across the
// instruction-alignment and chip-domain axes.
//
// Scores on each axis are normalized to [0, 1] by the maximum across the
// three models (as the paper normalizes per benchmark). Shape to check:
// ChipAlign's polygon envelops or matches both parents on most axes.

#include <cstdio>
#include <string>
#include <vector>

#include "core/backbones.hpp"
#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"
#include "eval/ifeval.hpp"
#include "eval/qa_runner.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace chipalign {
namespace {

struct Profile {
  std::string label;
  std::vector<double> axes;
};

}  // namespace
}  // namespace chipalign

int main() {
  using namespace chipalign;
  set_log_level(LogLevel::kInfo);
  std::printf(
      "== ChipAlign reproduction: Figure 2 (capability radar, normalized to "
      "[0,1]) ==\n\n");
  Timer timer;

  ModelZoo zoo;
  const EvalSuite suite = build_eval_suite(zoo.facts());
  const BackboneSpec spec = industrial_backbone();

  const Checkpoint base = zoo.base(spec);
  const Checkpoint chat = zoo.instruct(spec);
  const Checkpoint chipnemo = zoo.chip(spec);
  const Checkpoint chipalign = run_merge("chipalign", chipnemo, chat, base,
                                         0.6);

  const std::vector<std::string> axis_names = {
      "IFEval(strict)", "OpenROAD QA", "Industrial QA", "MCQ scripts",
      "MCQ bugs",       "MCQ circuits"};

  std::vector<Profile> profiles;
  struct Item {
    std::string label;
    const Checkpoint* checkpoint;
  };
  for (const Item& item : std::vector<Item>{
           {"LLaMA2-70B*-Chat", &chat},
           {"LLaMA2-70B*-ChipNeMo", &chipnemo},
           {"LLaMA2-70B*-ChipAlign", &chipalign},
       }) {
    TransformerModel model =
        TransformerModel::from_checkpoint(*item.checkpoint);
    Profile profile;
    profile.label = item.label;
    profile.axes.push_back(run_ifeval(model, suite.ifeval).prompt_strict);
    profile.axes.push_back(
        run_openroad_eval(model, suite.openroad, nullptr).all);
    profile.axes.push_back(run_industrial_eval(model, suite.industrial,
                                               *suite.rag, false)
                               .all /
                           100.0);
    const CategoryScores mcq = run_mcq_eval(model, suite.mcq);
    auto get = [&](const std::string& key) {
      const auto it = mcq.by_category.find(key);
      return it != mcq.by_category.end() ? it->second : 0.0;
    };
    profile.axes.push_back(get("Functionality"));
    profile.axes.push_back(get("Bugs"));
    profile.axes.push_back(get("Circuits"));
    profiles.push_back(std::move(profile));
  }

  // Normalize each axis by the max across models (paper's normalization).
  std::vector<double> axis_max(axis_names.size(), 1e-12);
  for (const Profile& profile : profiles) {
    for (std::size_t a = 0; a < profile.axes.size(); ++a) {
      axis_max[a] = std::max(axis_max[a], profile.axes[a]);
    }
  }

  std::vector<std::string> headers = {"Model"};
  for (const std::string& axis : axis_names) headers.push_back(axis);
  TablePrinter table(headers);
  for (const Profile& profile : profiles) {
    std::vector<std::string> cells = {profile.label};
    for (std::size_t a = 0; a < profile.axes.size(); ++a) {
      cells.push_back(TablePrinter::fmt(profile.axes[a] / axis_max[a], 2));
    }
    table.add_row(std::move(cells));
  }
  table.print();

  std::printf("\n(each column normalized by its best model; raw axis maxima:");
  for (std::size_t a = 0; a < axis_names.size(); ++a) {
    std::printf(" %s=%.3f", axis_names[a].c_str(), axis_max[a]);
  }
  std::printf(")\n(total %.1f s)\n", timer.seconds());
  return 0;
}
