// Figure 8 reproduction: sensitivity of ChipAlign to the interpolation
// weight lambda, on the OpenROAD-style QA benchmark (golden context),
// for both OpenROAD backbones.
//
// Shape to check: performance rises from the instruct endpoint (lambda=0),
// peaks in the mid/upper range (the paper reports 0.6), and falls back to
// the EDA endpoint at lambda=1.

#include <cstdio>
#include <string>
#include <vector>

#include "core/backbones.hpp"
#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"
#include "eval/qa_runner.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace chipalign {
namespace {

std::vector<double> sweep(ModelZoo& zoo, const BackboneSpec& spec,
                          const EvalSuite& suite,
                          const std::vector<double>& lambdas) {
  const Checkpoint base = zoo.base(spec);
  const Checkpoint instruct = zoo.instruct(spec);
  const Checkpoint chip = zoo.chip(spec);

  std::vector<double> scores;
  for (double lambda : lambdas) {
    const Checkpoint merged = run_merge("chipalign", chip, instruct, base,
                                        lambda);
    TransformerModel model = TransformerModel::from_checkpoint(merged);
    scores.push_back(run_openroad_eval(model, suite.openroad, nullptr).all);
  }
  return scores;
}

}  // namespace
}  // namespace chipalign

int main() {
  using namespace chipalign;
  set_log_level(LogLevel::kInfo);
  std::printf(
      "== ChipAlign reproduction: Figure 8 (lambda sensitivity, ROUGE-L on "
      "OpenROAD QA, golden context) ==\n\n");
  Timer timer;

  ModelZoo zoo;
  const EvalSuite suite = build_eval_suite(zoo.facts());

  std::vector<double> lambdas;
  for (int i = 0; i <= 10; ++i) lambdas.push_back(0.1 * i);

  const std::vector<double> series_a =
      sweep(zoo, openroad_backbone_a(), suite, lambdas);
  const std::vector<double> series_b =
      sweep(zoo, openroad_backbone_b(), suite, lambdas);

  TablePrinter table({"lambda", "LLaMA3-8B*", "Qwen1.5-14B*"});
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    table.add_row({TablePrinter::fmt(lambdas[i], 1),
                   TablePrinter::fmt(series_a[i]),
                   TablePrinter::fmt(series_b[i])});
  }
  table.print();

  // Report the argmax of each series so the peak is easy to spot.
  auto argmax_of = [](const std::vector<double>& series) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < series.size(); ++i) {
      if (series[i] > series[best]) best = i;
    }
    return best;
  };
  std::printf("\npeak lambda: LLaMA3-8B* = %.1f, Qwen1.5-14B* = %.1f "
              "(paper reports 0.6)\n",
              lambdas[argmax_of(series_a)], lambdas[argmax_of(series_b)]);
  std::printf("(lambda=0 is the instruct model, lambda=1 the EDA model; "
              "total %.1f s)\n",
              timer.seconds());
  return 0;
}
