// Table 3 reproduction: instruction-following accuracy on the IFEval-style
// suite, prompt and instruction level, strict and loose.
//
// Rows mirror the paper's six: the LLaMA3-8B-analog family (Instruct / EDA /
// ChipAlign) and the LLaMA2-70B-analog family (Chat / ChipNeMo / ChipAlign).
// Shape to check: ChipAlign ~ matches its instruct parent and beats the chip
// model by a wide margin; ChipNeMo is the weakest of its family.

#include <cstdio>
#include <string>
#include <vector>

#include "core/backbones.hpp"
#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"
#include "eval/ifeval.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace chipalign {
namespace {

void add_family(ModelZoo& zoo, const BackboneSpec& spec,
                const std::string& display, const std::string& chip_label,
                const EvalSuite& suite, TablePrinter& table) {
  const Checkpoint base = zoo.base(spec);
  const Checkpoint instruct = zoo.instruct(spec);
  const Checkpoint chip = zoo.chip(spec);
  const Checkpoint merged = run_merge("chipalign", chip, instruct, base, 0.6);

  struct Row {
    std::string label;
    const Checkpoint* checkpoint;
  };
  for (const Row& row : std::vector<Row>{
           {display + "-Instruct", &instruct},
           {display + "-" + chip_label, &chip},
           {display + "-ChipAlign", &merged},
       }) {
    TransformerModel model = TransformerModel::from_checkpoint(*row.checkpoint);
    const IfEvalResult result = run_ifeval(model, suite.ifeval);
    table.add_row({row.label, TablePrinter::pct(result.prompt_strict),
                   TablePrinter::pct(result.prompt_loose),
                   TablePrinter::pct(result.instruction_strict),
                   TablePrinter::pct(result.instruction_loose)});
  }
}

}  // namespace
}  // namespace chipalign

int main() {
  using namespace chipalign;
  set_log_level(LogLevel::kInfo);
  std::printf(
      "== ChipAlign reproduction: Table 3 (IFEval-style instruction "
      "following, %% accuracy) ==\n\n");
  Timer timer;

  ModelZoo zoo;
  const EvalSuite suite = build_eval_suite(zoo.facts());

  TablePrinter table({"Method", "Prompt:Strict", "Prompt:Loose",
                      "Instr:Strict", "Instr:Loose"});
  add_family(zoo, openroad_backbone_a(), "LLaMA3-8B*", "EDA", suite, table);
  add_family(zoo, industrial_backbone(), "LLaMA2-70B*", "ChipNeMo", suite,
             table);
  table.print();

  std::printf("\n(total %.1f s)\n", timer.seconds());
  return 0;
}
