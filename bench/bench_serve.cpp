// bench_serve — the multi-tenant serving engine (src/serve).
//
// Two phases, mirroring the two serving claims:
//
//   throughput  N distinct sessions served to completion at batch widths
//               1/4/16/64 (prefix cache off). Aggregate tokens/sec =
//               tokens advanced across all sessions / wall time. Batching
//               streams each weight matrix once per step instead of once
//               per session, so throughput must not degrade as the width
//               grows.
//   prefix      N sessions sharing a long QA instruction header, served
//               with the radix prefix cache on and a small residency
//               window (later sessions admit after earlier prompts were
//               published). Reports the per-token cache hit rate.
//
// A third phase serves the same workload with int8 weights and an fp16 KV
// cache (the production memory configuration) and pins run-to-run bitwise
// determinism of the quantized engine; its tokens/s is trend-tracked in CI.
//
// A fourth phase turns on speculative decoding (ServeConfig::speculative:
// prompt-lookup drafting + one multi-token verify_step per greedy session
// per step) in three configurations — fp32, fp32 + prefix cache on the QA
// workload, and int8 + fp16 KV — and requires every output byte-identical
// to its non-speculative counterpart (fatal): greedy acceptance makes
// speculation a pure throughput knob. Per-phase acceptance length and
// draft hit rate land in BENCH_serve.json.
//
// A fifth phase exercises the request lifecycle deterministically (fake
// clock, no failpoints): a mix of plain, cancelled, and deadlined sessions
// plus a shed-oldest overload burst, finished by a graceful drain. It
// reports the terminal-status counters (lifecycle_completed / _cancelled /
// _expired / _shed) and a `drain_clean` boolean: every accepted session
// terminal, completed outputs bitwise equal to the plain serving run,
// early-exited outputs a prefix of it, zero resident KV bytes and zero
// prefix-cache pins after drain, and the lifecycle counters balanced.
//
// Gates (--gate):
//
//   serve_batch_scaling  min(tps@4/tps@1, tps@16/tps@4) >= 1.0 — batched
//                        decode is monotonically no slower through width
//                        16. Skipped on single-core hosts, where wider
//                        batches only add scheduling overhead.
//   serve_prefix_hit     prefix-cache hit rate > 0.90 on the shared-header
//                        QA workload. Always enforced.
//   drain_clean          boolean, enforced by the CI trend checker: a
//                        baseline-true value must stay true.
//
// Correctness is fatal in every mode: every width (and the prefix run)
// must emit bit-identical outputs, equal to serial generate() anchors.
//
//   bench_serve            full sizes, report only
//   bench_serve --gate     full sizes, enforce the gates (exit 1 on miss)
//   bench_serve --quick    tiny sizes, no gates (CI smoke / sanitizers)
//   bench_serve --json P   also write a machine-readable summary to P

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/corpus.hpp"
#include "data/fact_base.hpp"
#include "data/qa_bench.hpp"
#include "nn/infer.hpp"
#include "serve/server.hpp"
#include "tensor/kernels/kernels.hpp"
#include "text/tokenizer.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace chipalign;

namespace {

struct Sizes {
  // Serving-shaped model over the real tokenizer vocab.
  std::int64_t d_model = 128;
  std::int64_t n_layers = 2;
  std::int64_t n_heads = 4;
  std::int64_t n_kv_heads = 2;
  std::int64_t d_ff = 256;
  // Throughput phase.
  int sessions = 64;
  std::vector<std::int64_t> widths = {1, 4, 16, 64};
  std::int64_t max_new = 24;
  int reps = 2;
  // Prefix phase.
  int prefix_sessions = 64;
  std::size_t header_chars = 1600;
  std::int64_t prefix_max_new = 8;
};

Sizes quick_sizes() {
  Sizes s;
  s.d_model = 32;
  s.n_layers = 2;
  s.n_heads = 2;
  s.n_kv_heads = 1;
  s.d_ff = 64;
  s.sessions = 8;
  s.widths = {1, 2, 4};
  s.max_new = 4;
  s.reps = 10;  // short reps: best-of-many for trend-stable tokens/s
  s.prefix_sessions = 8;
  s.header_chars = 120;
  s.prefix_max_new = 2;
  return s;
}

/// Best-of-reps wall time of fn() in seconds.
template <typename Fn>
double best_seconds(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

struct GateResult {
  std::string name;
  double value = 0.0;
  double floor = 0.0;
  bool skipped = false;
  std::string skip_reason;
  bool pass() const { return skipped || value >= floor; }
  /// Explicit status for machine consumers (the CI trend checker keys off
  /// the "skipped" prefix rather than gating on a noise value).
  std::string status() const {
    if (skipped) return "skipped (" + skip_reason + ")";
    return pass() ? "pass" : "fail";
  }
};

/// Writes the `"gates": {...}` JSON object (no trailing comma).
void write_gates_json(std::FILE* f, const std::vector<GateResult>& gates) {
  std::fprintf(f, "  \"gates\": {\n");
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const GateResult& g = gates[i];
    std::fprintf(f,
                 "    \"%s\": {\"value\": %.4f, \"floor\": %.4f, "
                 "\"status\": \"%s\"}%s\n",
                 g.name.c_str(), g.value, g.floor, g.status().c_str(),
                 i + 1 < gates.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
}

void print_gate(const GateResult& g) {
  if (g.skipped) {
    std::printf("{\"gate\":\"%s\",\"status\":\"skip\",\"reason\":\"%s\"}\n",
                g.name.c_str(), g.skip_reason.c_str());
  } else {
    std::printf(
        "{\"gate\":\"%s\",\"value\":%.2f,\"floor\":%.2f,\"status\":\"%s\"}\n",
        g.name.c_str(), g.value, g.floor, g.pass() ? "pass" : "fail");
  }
}

/// Serves `prompts` to completion on a fresh Server and returns every
/// result text (submission order) plus the final server stats.
std::vector<std::string> serve_all(const TransformerModel& model,
                                   const ServeConfig& serve,
                                   const std::vector<std::string>& prompts,
                                   const GenerateOptions& options,
                                   ServerStats* stats_out) {
  Server server(model, serve);
  std::vector<SessionId> ids;
  ids.reserve(prompts.size());
  for (const auto& prompt : prompts) {
    ids.push_back(server.submit(server.text_request(prompt, options)));
  }
  server.run();
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (const SessionId id : ids) {
    out.push_back(server.wait_result(id).text);
  }
  if (stats_out != nullptr) *stats_out = server.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool gate = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const Sizes sizes = quick ? quick_sizes() : Sizes{};

  std::printf("{\"backend\":\"%s\",\"simd_available\":%s,\"cores\":%u}\n",
              kernels::backend_name(),
              kernels::simd_available() ? "true" : "false",
              std::thread::hardware_concurrency());

  ModelConfig config;
  config.name = "bench-serve";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = sizes.d_model;
  config.n_layers = sizes.n_layers;
  config.n_heads = sizes.n_heads;
  config.n_kv_heads = sizes.n_kv_heads;
  config.d_ff = sizes.d_ff;
  config.max_seq_len = 2048;
  config.validate();
  Rng rng(0x5E27EULL);
  const TransformerModel model(config, rng);

  // -- throughput: aggregate tokens/sec vs batch width -----------------------
  std::vector<std::string> prompts;
  for (int i = 0; i < sizes.sessions; ++i) {
    prompts.push_back("do: report the design state\nq: status of block " +
                      std::to_string(100 + i * 7) + "\nout: ");
  }
  GenerateOptions options;
  options.max_new_tokens = sizes.max_new;

  // Serial anchors: plain generate() for a handful of sessions pins the
  // batched outputs to the single-session engine bit-for-bit.
  std::vector<std::string> anchors;
  for (std::size_t i = 0; i < std::min<std::size_t>(4, prompts.size()); ++i) {
    anchors.push_back(generate(model, prompts[i], options));
  }

  bool outputs_equal = true;
  std::vector<std::string> first_outputs;
  std::vector<double> width_tps;
  for (const std::int64_t width : sizes.widths) {
    ServeConfig serve;
    serve.max_sessions = static_cast<std::size_t>(sizes.sessions);
    serve.max_batch = width;
    ServerStats stats;
    std::vector<std::string> outputs;
    const double seconds = best_seconds(sizes.reps, [&] {
      outputs = serve_all(model, serve, prompts, options, &stats);
    });
    const double tps = static_cast<double>(stats.step_tokens) / seconds;
    width_tps.push_back(tps);
    if (first_outputs.empty()) {
      first_outputs = outputs;
      for (std::size_t i = 0; i < anchors.size(); ++i) {
        if (outputs[i] != anchors[i]) outputs_equal = false;
      }
    } else if (outputs != first_outputs) {
      outputs_equal = false;
    }
    std::printf(
        "{\"bench\":\"serve_throughput\",\"batch\":%lld,\"sessions\":%d,"
        "\"step_tokens\":%lld,\"seconds\":%.3f,\"tokens_per_s\":%.1f,"
        "\"steps\":%lld}\n",
        static_cast<long long>(width), sizes.sessions,
        static_cast<long long>(stats.step_tokens), seconds, tps,
        static_cast<long long>(stats.steps));
  }

  // -- prefix cache: shared-header QA workload -------------------------------
  const FactBase facts;
  const auto items = build_openroad_eval(facts, 901, sizes.prefix_sessions);
  std::string header = "follow the openroad flow rules ";
  while (header.size() < sizes.header_chars) {
    header += "and answer from the retrieved timing context only ";
  }
  std::vector<std::string> qa_prompts;
  for (int i = 0; i < sizes.prefix_sessions; ++i) {
    const auto& item = items[static_cast<std::size_t>(i) % items.size()];
    qa_prompts.push_back(qa_prompt(
        header, {}, item.question + " [" + std::to_string(i) + "]"));
  }
  GenerateOptions qa_options;
  qa_options.max_new_tokens = sizes.prefix_max_new;

  std::vector<std::string> qa_anchors;
  for (std::size_t i = 0; i < std::min<std::size_t>(2, qa_prompts.size());
       ++i) {
    qa_anchors.push_back(generate(model, qa_prompts[i], qa_options));
  }

  ServeConfig prefix_serve;
  // A small residency window is what makes sharing possible: sessions
  // admitted later reuse the header KV that earlier sessions published.
  prefix_serve.max_sessions = 2;
  prefix_serve.max_batch = 2;
  prefix_serve.prefix_cache_bytes = std::size_t{1} << 26;
  ServerStats prefix_stats;
  Timer prefix_timer;
  const auto qa_outputs =
      serve_all(model, prefix_serve, qa_prompts, qa_options, &prefix_stats);
  const double prefix_seconds = prefix_timer.seconds();
  for (std::size_t i = 0; i < qa_anchors.size(); ++i) {
    if (qa_outputs[i] != qa_anchors[i]) outputs_equal = false;
  }
  const double hit_rate = prefix_stats.cache.hit_rate();
  std::printf(
      "{\"bench\":\"serve_prefix\",\"sessions\":%d,\"header_chars\":%zu,"
      "\"seconds\":%.3f,\"hit_rate\":%.4f,\"hit_tokens\":%lld,"
      "\"lookup_tokens\":%lld,\"evictions\":%lld}\n",
      sizes.prefix_sessions, sizes.header_chars, prefix_seconds, hit_rate,
      static_cast<long long>(prefix_stats.cache.hit_tokens),
      static_cast<long long>(prefix_stats.cache.lookup_tokens),
      static_cast<long long>(prefix_stats.cache.evictions));

  // -- quantized serving: int8 weights + fp16 KV -----------------------------
  // The production memory configuration: weights dequantize on the fly in
  // the batched kernels, the KV cache (per-session and radix) stores fp16
  // rows at half the bytes. Outputs can differ from the fp32 model's (it
  // is a different rounding of the same weights) but must be bitwise
  // identical run-to-run and to the quantized model's serial generate().
  TransformerModel qmodel =
      TransformerModel::from_checkpoint(model.to_checkpoint());
  qmodel.quantize_weights(DType::kI8);
  const std::int64_t quant_width = sizes.widths.back();
  ServeConfig quant_serve;
  quant_serve.max_sessions = static_cast<std::size_t>(sizes.sessions);
  quant_serve.max_batch = quant_width;
  quant_serve.kv_dtype = DType::kF16;
  ServerStats quant_stats;
  std::vector<std::string> quant_outputs;
  const double quant_seconds = best_seconds(sizes.reps, [&] {
    quant_outputs = serve_all(qmodel, quant_serve, prompts, options,
                              &quant_stats);
  });
  const double quant_tps =
      static_cast<double>(quant_stats.step_tokens) / quant_seconds;
  bool quant_deterministic =
      serve_all(qmodel, quant_serve, prompts, options, nullptr) ==
      quant_outputs;
  for (std::size_t i = 0; i < std::min<std::size_t>(2, prompts.size());
       ++i) {
    if (quant_outputs[i] != generate(qmodel, prompts[i], options)) {
      quant_deterministic = false;
    }
  }
  const std::size_t kv_row_f32 =
      SessionState::kv_bytes_for(config, 64, DType::kF32);
  const std::size_t kv_row_f16 =
      SessionState::kv_bytes_for(config, 64, DType::kF16);
  std::printf(
      "{\"bench\":\"serve_quant\",\"dtype\":\"int8\",\"kv_dtype\":\"f16\","
      "\"batch\":%lld,\"tokens_per_s\":%.1f,\"vs_fp32\":%.2f,"
      "\"deterministic\":%s,\"kv_bytes_f16_over_f32\":%.2f}\n",
      static_cast<long long>(quant_width), quant_tps,
      quant_tps / width_tps.back(), quant_deterministic ? "true" : "false",
      static_cast<double>(kv_row_f16) / static_cast<double>(kv_row_f32));

  // -- speculative serving: draft + verify for greedy sessions ---------------
  // Identity is the claim under test: with greedy acceptance, a served
  // session's bytes must not move when speculation is enabled — across the
  // throughput workload, the prefix-cache QA workload (drafting composes
  // with radix reuse: the cache only ever sees accepted prefixes), and the
  // quantized configuration. Throughput and acceptance are reported and
  // trend-tracked; identity misses are fatal.
  ServeConfig spec_serve;
  spec_serve.max_sessions = static_cast<std::size_t>(sizes.sessions);
  spec_serve.max_batch = quant_width;
  spec_serve.speculative = true;
  ServerStats spec_stats;
  std::vector<std::string> spec_outputs;
  const double spec_seconds = best_seconds(sizes.reps, [&] {
    spec_outputs = serve_all(model, spec_serve, prompts, options,
                             &spec_stats);
  });
  const double spec_tps =
      static_cast<double>(spec_stats.step_tokens) / spec_seconds;
  bool spec_outputs_equal = spec_outputs == first_outputs;
  std::printf(
      "{\"bench\":\"serve_spec\",\"batch\":%lld,\"tokens_per_s\":%.1f,"
      "\"vs_plain\":%.2f,\"accept_len\":%.2f,\"draft_hit_rate\":%.2f,"
      "\"outputs_equal\":%s}\n",
      static_cast<long long>(quant_width), spec_tps,
      spec_tps / width_tps.back(), spec_stats.spec.accept_len_mean(),
      spec_stats.spec.draft_hit_rate(),
      spec_outputs_equal ? "true" : "false");

  ServeConfig spec_prefix_serve = prefix_serve;
  spec_prefix_serve.speculative = true;
  ServerStats spec_prefix_stats;
  const auto spec_qa_outputs = serve_all(model, spec_prefix_serve,
                                         qa_prompts, qa_options,
                                         &spec_prefix_stats);
  if (spec_qa_outputs != qa_outputs) spec_outputs_equal = false;
  std::printf(
      "{\"bench\":\"serve_spec_prefix\",\"hit_rate\":%.4f,"
      "\"accept_len\":%.2f,\"draft_hit_rate\":%.2f,\"outputs_equal\":%s}\n",
      spec_prefix_stats.cache.hit_rate(),
      spec_prefix_stats.spec.accept_len_mean(),
      spec_prefix_stats.spec.draft_hit_rate(),
      spec_qa_outputs == qa_outputs ? "true" : "false");

  ServeConfig spec_quant_serve = quant_serve;
  spec_quant_serve.speculative = true;
  ServerStats spec_quant_stats;
  const auto spec_quant_outputs = serve_all(qmodel, spec_quant_serve,
                                            prompts, options,
                                            &spec_quant_stats);
  if (spec_quant_outputs != quant_outputs) spec_outputs_equal = false;
  std::printf(
      "{\"bench\":\"serve_spec_quant\",\"accept_len\":%.2f,"
      "\"draft_hit_rate\":%.2f,\"outputs_equal\":%s}\n",
      spec_quant_stats.spec.accept_len_mean(),
      spec_quant_stats.spec.draft_hit_rate(),
      spec_quant_outputs == quant_outputs ? "true" : "false");

  // -- request lifecycle: cancel/deadline/shed/drain -------------------------
  // Deterministic by construction: a fake millisecond clock, no driver
  // thread, no failpoints. The workload reuses the throughput prompts so
  // completed sessions can be pinned bitwise against `first_outputs`.
  const auto is_text_prefix = [](const std::string& full,
                                 const std::string& part) {
    return part.size() <= full.size() &&
           full.compare(0, part.size(), part) == 0;
  };
  bool drain_clean = true;
  long long lifecycle_completed = 0;
  long long lifecycle_cancelled = 0;
  long long lifecycle_expired = 0;
  long long lifecycle_shed = 0;
  {
    // Overload burst: bounded queue with the shed-oldest policy, no driver
    // running. The four oldest submissions are shed with explicit results;
    // the survivors complete.
    ServeConfig shed_serve;
    shed_serve.max_queue = 2;
    shed_serve.shed_oldest_on_full = true;
    Server shed_server(model, shed_serve);
    std::vector<SessionId> shed_ids;
    for (int i = 0; i < 6; ++i) {
      shed_ids.push_back(shed_server.submit(shed_server.text_request(
          prompts[static_cast<std::size_t>(i) % prompts.size()], options)));
    }
    shed_server.run();
    for (const SessionId id : shed_ids) {
      const auto result = shed_server.wait_result_for(id, 0);
      if (!result.has_value()) drain_clean = false;
    }
    const ServerStats shed_stats = shed_server.stats();
    lifecycle_shed = shed_stats.shed;
    if (shed_stats.shed != 4 || shed_stats.completed != 2) {
      drain_clean = false;
    }
  }
  {
    auto fake_ms = std::make_shared<std::atomic<std::int64_t>>(0);
    ServeConfig life_serve;
    life_serve.max_sessions = 4;
    life_serve.max_batch = 4;
    life_serve.prefix_cache_bytes = std::size_t{1} << 26;
    life_serve.now_ms = [fake_ms] { return fake_ms->load(); };
    Server server(model, life_serve);
    const int life_sessions = std::min<int>(sizes.sessions, 16);
    std::vector<SessionId> ids;
    for (int i = 0; i < life_sessions; ++i) {
      Request request = server.text_request(
          prompts[static_cast<std::size_t>(i)], options);
      if (i % 4 == 2) request.deadline_ms = 5;
      const SessionId id = server.submit(std::move(request));
      ids.push_back(id);
      if (i % 4 == 1) server.cancel(id);  // cancelled while queued
    }
    // Decode past prefill so resident deadlined sessions are evicted
    // mid-stream (token granularity). One step after the clock advance
    // expires both residents (mid-decode) and queued deadlined sessions
    // (queue sweep) before the drain flushes the rest as kShuttingDown.
    const std::int64_t warm_steps = static_cast<std::int64_t>(
        server.text_request(prompts[0], options).prompt.size() + 1);
    for (std::int64_t s = 0; s < warm_steps && server.step(); ++s) {
    }
    fake_ms->fetch_add(10);
    server.step();
    server.drain();
    server.run();

    for (int i = 0; i < life_sessions; ++i) {
      const auto result =
          server.wait_result_for(ids[static_cast<std::size_t>(i)], 0);
      if (!result.has_value()) {
        drain_clean = false;
        continue;
      }
      if (result->status == SessionStatus::kCompleted) {
        if (result->text != first_outputs[static_cast<std::size_t>(i)]) {
          drain_clean = false;
        }
      } else if (!is_text_prefix(first_outputs[static_cast<std::size_t>(i)],
                                 result->text)) {
        drain_clean = false;
      }
    }
    const ServerStats stats = server.stats();
    lifecycle_completed = stats.completed;
    lifecycle_cancelled = stats.cancelled;
    lifecycle_expired = stats.expired;
    const bool balanced =
        stats.submitted == stats.completed + stats.cancelled +
                               stats.expired + stats.shed +
                               stats.shutdown_terminated + stats.failed +
                               stats.waiting + stats.resident;
    if (!balanced || stats.waiting != 0 || stats.resident != 0 ||
        stats.resident_kv_bytes != 0 || stats.cache.pinned_nodes != 0 ||
        stats.expired == 0 || stats.cancelled == 0) {
      drain_clean = false;
    }
    std::printf(
        "{\"bench\":\"serve_lifecycle\",\"sessions\":%d,\"completed\":%lld,"
        "\"cancelled\":%lld,\"expired\":%lld,\"shed\":%lld,"
        "\"shutdown_terminated\":%lld,\"drain_clean\":%s}\n",
        life_sessions, static_cast<long long>(stats.completed),
        static_cast<long long>(stats.cancelled),
        static_cast<long long>(stats.expired), lifecycle_shed,
        static_cast<long long>(stats.shutdown_terminated),
        drain_clean ? "true" : "false");
  }

  // -- gates -----------------------------------------------------------------
  double scaling = 1e300;
  for (std::size_t i = 1; i < width_tps.size() && sizes.widths[i] <= 16;
       ++i) {
    scaling = std::min(scaling, width_tps[i] / width_tps[i - 1]);
  }
  std::vector<GateResult> gates;
  gates.push_back({"serve_batch_scaling", scaling, 1.0, false, {}});
  if (std::thread::hardware_concurrency() < 2) {
    gates.back().skipped = true;
    gates.back().skip_reason = "1 core";
  }
  gates.push_back({"serve_prefix_hit", hit_rate, 0.90, false, {}});

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f, "{\n  \"backend\": \"%s\",\n  \"quick\": %s,\n",
                 kernels::backend_name(), quick ? "true" : "false");
    for (std::size_t i = 0; i < sizes.widths.size(); ++i) {
      std::fprintf(f, "  \"tokens_per_s_batch%lld\": %.1f,\n",
                   static_cast<long long>(sizes.widths[i]), width_tps[i]);
    }
    std::fprintf(f,
                 "  \"batch_scaling\": %.3f,\n"
                 "  \"prefix_hit_rate\": %.4f,\n"
                 "  \"prefix_seconds\": %.3f,\n"
                 "  \"tokens_per_s_quant\": %.1f,\n"
                 "  \"quant_deterministic\": %s,\n"
                 "  \"tokens_per_s_spec\": %.1f,\n"
                 "  \"spec_accept_len\": %.4f,\n"
                 "  \"spec_draft_hit_rate\": %.4f,\n"
                 "  \"spec_prefix_accept_len\": %.4f,\n"
                 "  \"spec_prefix_draft_hit_rate\": %.4f,\n"
                 "  \"spec_quant_accept_len\": %.4f,\n"
                 "  \"spec_quant_draft_hit_rate\": %.4f,\n"
                 "  \"spec_outputs_equal\": %s,\n"
                 "  \"outputs_equal\": %s,\n"
                 "  \"lifecycle_completed\": %lld,\n"
                 "  \"lifecycle_cancelled\": %lld,\n"
                 "  \"lifecycle_expired\": %lld,\n"
                 "  \"lifecycle_shed\": %lld,\n"
                 "  \"drain_clean\": %s,\n",
                 scaling, hit_rate, prefix_seconds, quant_tps,
                 quant_deterministic ? "true" : "false", spec_tps,
                 spec_stats.spec.accept_len_mean(),
                 spec_stats.spec.draft_hit_rate(),
                 spec_prefix_stats.spec.accept_len_mean(),
                 spec_prefix_stats.spec.draft_hit_rate(),
                 spec_quant_stats.spec.accept_len_mean(),
                 spec_quant_stats.spec.draft_hit_rate(),
                 spec_outputs_equal ? "true" : "false",
                 outputs_equal ? "true" : "false", lifecycle_completed,
                 lifecycle_cancelled, lifecycle_expired, lifecycle_shed,
                 drain_clean ? "true" : "false");
    write_gates_json(f, gates);
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  // A serving engine that changes any session's bits is broken, not slow.
  if (!outputs_equal) {
    std::fprintf(stderr,
                 "bench_serve: FAILED (batched outputs differ across widths "
                 "or from serial generate)\n");
    return 1;
  }
  if (!quant_deterministic) {
    std::fprintf(stderr,
                 "bench_serve: FAILED (quantized serving outputs not "
                 "bitwise deterministic)\n");
    return 1;
  }
  if (!spec_outputs_equal) {
    std::fprintf(stderr,
                 "bench_serve: FAILED (speculative serving outputs differ "
                 "from non-speculative serving)\n");
    return 1;
  }
  if (!drain_clean) {
    std::fprintf(stderr,
                 "bench_serve: FAILED (lifecycle drain left residue, "
                 "unterminated sessions, or non-reference outputs)\n");
    return 1;
  }

  if (gate) {
    bool ok = true;
    for (const GateResult& g : gates) {
      print_gate(g);
      if (!g.pass()) {
        std::fprintf(stderr, "GATE MISS: %s %.2f < required %.2f\n",
                     g.name.c_str(), g.value, g.floor);
        ok = false;
      }
    }
    if (!ok) {
      std::fprintf(stderr, "bench_serve: FAILED (serving gate)\n");
      return 1;
    }
    std::printf("{\"gate\":\"pass\"}\n");
  }
  return 0;
}
