// Ablation bench for the design choices behind ChipAlign (§III-A/B):
//  1. weight-space geometry of the real model pair (angle Theta per tensor,
//     task-vector cosine, SLERP-vs-LERP gap at lambda = 0.6);
//  2. the contribution of each ChipAlign ingredient, measured on OpenROAD QA
//     (golden context): full ChipAlign vs plain LERP vs SLERP without the
//     norm-restoration step.

#include <cstdio>
#include <string>
#include <vector>

#include "core/backbones.hpp"
#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"
#include "data/corpus.hpp"
#include "eval/qa_runner.hpp"
#include "merge/fisher.hpp"
#include "merge/geodesic.hpp"
#include "merge/geometry.hpp"
#include "tensor/tensor_ops.hpp"
#include "train/fisher.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace chipalign {
namespace {

/// ChipAlign variant that skips the Norm^lambda rescaling step — the merged
/// tensor keeps unit-sphere scale times the *chip* norm only. Used to
/// isolate the contribution of geometric norm restoration.
class NoRestoreMerger final : public Merger {
 public:
  std::string name() const override { return "chipalign_no_restore"; }

  Tensor merge_tensor(const std::string&, const Tensor& chip,
                      const Tensor& instruct, const Tensor*,
                      const MergeOptions& options, Rng&) const override {
    const double norm_chip = ops::frobenius_norm(chip);
    const double norm_instruct = ops::frobenius_norm(instruct);
    if (norm_chip == 0.0 || norm_instruct == 0.0) {
      return ops::add(ops::scaled(chip, static_cast<float>(options.lambda)),
                      ops::scaled(instruct,
                                  static_cast<float>(1.0 - options.lambda)));
    }
    const Tensor unit_chip =
        ops::scaled(chip, static_cast<float>(1.0 / norm_chip));
    const Tensor unit_instruct =
        ops::scaled(instruct, static_cast<float>(1.0 / norm_instruct));
    Tensor merged = slerp_unit(unit_chip, unit_instruct, options.lambda,
                               options.theta_epsilon);
    // Arithmetic-mean rescale instead of the geometric weighted mean.
    ops::scale(merged.values(),
               static_cast<float>(0.5 * (norm_chip + norm_instruct)));
    return merged;
  }
};

}  // namespace
}  // namespace chipalign

int main() {
  using namespace chipalign;
  set_log_level(LogLevel::kInfo);
  std::printf("== ChipAlign ablation: weight-space geometry & method "
              "ingredients ==\n");
  Timer timer;

  ModelZoo zoo;
  const EvalSuite suite = build_eval_suite(zoo.facts());
  const BackboneSpec spec = openroad_backbone_a();
  const Checkpoint base = zoo.base(spec);
  const Checkpoint instruct = zoo.instruct(spec);
  const Checkpoint chip = zoo.chip(spec);

  // Part 1: geometry of the chip/instruct pair.
  std::printf("\n--- weight-space geometry (chip vs instruct, lambda=0.6) "
              "---\n\n");
  const auto report = analyze_geometry(chip, instruct, &base, 0.6);
  TablePrinter geo({"Tensor", "numel", "theta(rad)", "tv-cosine",
                    "slerp-lerp gap"});
  for (const TensorGeometry& g : report) {
    geo.add_row({g.name, std::to_string(g.numel), TablePrinter::fmt(g.theta, 4),
                 TablePrinter::fmt(g.tv_cosine, 3),
                 TablePrinter::fmt(g.slerp_lerp_gap, 5)});
  }
  geo.print();
  const GeometrySummary summary = summarize_geometry(report);
  std::printf("\nmean theta %.4f rad, max theta %.4f rad, mean task-vector "
              "cosine %.3f, mean slerp-lerp gap %.5f\n",
              summary.mean_theta, summary.max_theta, summary.mean_tv_cosine,
              summary.mean_slerp_lerp_gap);

  // Part 2: ingredient ablation on OpenROAD QA (golden context).
  std::printf("\n--- ingredient ablation (ROUGE-L, golden context) ---\n\n");
  TablePrinter ablation({"Variant", "All"});

  auto eval_ckpt = [&](const Checkpoint& ckpt) {
    TransformerModel model = TransformerModel::from_checkpoint(ckpt);
    return run_openroad_eval(model, suite.openroad, nullptr).all;
  };

  MergeOptions options;
  options.lambda = 0.6;
  ablation.add_row(
      {"chipalign (geodesic + norm restore)",
       TablePrinter::fmt(eval_ckpt(run_merge("chipalign", chip, instruct,
                                             base, 0.6)))});
  ablation.add_row(
      {"lerp (straight line, same lambda)",
       TablePrinter::fmt(eval_ckpt(run_merge("lerp", chip, instruct, base,
                                             0.6)))});
  ablation.add_row(
      {"slerp w/o geometric norm restore",
       TablePrinter::fmt(eval_ckpt(merge_checkpoints(
           NoRestoreMerger(), chip, instruct, nullptr, options)))});
  ablation.add_row(
      {"chipalign row-wise (per-row spheres)",
       TablePrinter::fmt(
           eval_ckpt(run_merge("chipalign_rowwise", chip, instruct, base,
                               0.6)))});

  // Fisher-weighted merging (data-based extension baseline): estimate each
  // parent's diagonal Fisher on its own specialty data.
  {
    TransformerModel chip_model = TransformerModel::from_checkpoint(chip);
    TransformerModel instruct_model =
        TransformerModel::from_checkpoint(instruct);

    ChipDataConfig chip_data;
    chip_data.max_len = spec.config.max_seq_len;
    chip_data.domains = spec.chip_domains;
    const Checkpoint fisher_chip = estimate_diagonal_fisher(
        chip_model, build_chip_daft_dataset(zoo.facts(), chip_data), 48, 91);

    InstructDataConfig instruct_data;
    instruct_data.max_len = spec.config.max_seq_len;
    instruct_data.count = 200;
    const Checkpoint fisher_instruct = estimate_diagonal_fisher(
        instruct_model, build_instruct_dataset(instruct_data), 48, 92);

    const FisherMerger fisher_merger(fisher_chip, fisher_instruct);
    ablation.add_row(
        {"fisher-weighted (data-based)",
         TablePrinter::fmt(eval_ckpt(merge_checkpoints(
             fisher_merger, chip, instruct, nullptr, options)))});
  }
  ablation.print();

  // Part 3: metric comparison (the paper's §IV-A remark that ROUGE-L is the
  // most representative metric on this benchmark, over BLEU and others).
  std::printf("\n--- metric comparison on the same responses (golden context) "
              "---\n\n");
  TablePrinter metrics({"Model", "ROUGE-L", "ROUGE-1", "BLEU", "token-F1"});
  struct Row {
    const char* label;
    Checkpoint ckpt;
  };
  std::vector<Row> rows;
  rows.push_back({"Instruct", instruct});
  rows.push_back({"EDA", chip});
  rows.push_back({"ChipAlign(0.6)", run_merge("chipalign", chip, instruct,
                                              base, 0.6)});
  for (const Row& row : rows) {
    TransformerModel model = TransformerModel::from_checkpoint(row.ckpt);
    const auto scores = run_openroad_eval_metrics(model, suite.openroad);
    metrics.add_row({row.label, TablePrinter::fmt(scores.at("rouge_l").all),
                     TablePrinter::fmt(scores.at("rouge_1").all),
                     TablePrinter::fmt(scores.at("bleu").all),
                     TablePrinter::fmt(scores.at("token_f1").all)});
  }
  metrics.print();

  std::printf("\n(total %.1f s)\n", timer.seconds());
  return 0;
}
