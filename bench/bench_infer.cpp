// bench_infer — the fast inference engine vs the seed decode loop.
//
// Acceptance gates, matching what the engine claims to deliver:
//
//   decode_speedup   kernel-layer decode tokens/sec vs the seed scalar
//                    session (in-TU copy of the pre-kernel step(): scalar
//                    double-accumulation matvecs, eager KV zero-fill,
//                    per-step allocations). The floor self-calibrates from
//                    a kernel-vs-seed matvec probe on the logits shape —
//                    capped at the original 3x claim — because the
//                    achievable end-to-end ratio tracks how much faster
//                    this host's SIMD matvec actually is. Enforced only
//                    when the AVX2 backend is live.
//   spec_decode_speedup  speculative greedy decode (prompt-lookup drafting
//                    + multi-token verify_step) >= 1.5x plain greedy decode
//                    tokens/sec on a copy-heavy prompt. Skipped when the
//                    workload's acceptance length is too low for drafting
//                    to pay, or when a batched-matmul probe shows the host
//                    streams weights faster than it multiplies (the win is
//                    one weight pass per K+1 rows, which needs the matvec
//                    to be bandwidth-bound). Emitted tokens must be
//                    byte-identical to plain greedy decode (fatal).
//   matvec_scaling   the [vocab, d] logits-projection parallel_matvec gets
//                    >= 2x faster from 1 to 4 pool threads. Skipped on
//                    hosts with fewer than 4 cores.
//   mcq_speedup      run_mcq_eval's prefill-once/snapshot-per-choice path
//                    is >= 2x faster than re-prefilling the shared context
//                    for every choice, with bitwise-equal scores. Always
//                    enforced (it is an algorithmic win, not a SIMD one).
//   int8_matvec_speedup  the dequantize-on-the-fly int8 matvec >= 1.5x the
//                    fp32 matvec on the memory-bound logits shape (4x fewer
//                    weight bytes stream per call). AVX2-only, like
//                    decode_speedup.
//   mcq_acc_*        per-dtype MCQ accuracy within a fixed delta of fp32
//                    (quantized weights must not change answers wholesale).
//   rouge_*          ROUGE-L between fp32 and per-dtype greedy generations
//                    from the same prompt stays above a pinned floor.
//
// Quantized decode (fp16 / bf16 / int8 weights) is measured per dtype:
// decode tokens/sec plus a run-to-run bitwise determinism check (fatal on
// mismatch — quantized runs inherit the kernel determinism contract).
// `--dtype` narrows the set (CI smokes one dtype per job).
//
// One JSON line per measurement goes to stdout; --json PATH additionally
// writes a single machine-readable summary object (BENCH_infer.json in CI)
// so the perf trajectory is tracked across PRs. The summary's "gates"
// object carries per-gate status ("pass" / "fail" / "skipped (<reason>)")
// so the bench-trend checker never gates on a skipped gate's raw value
// (on a 1-core host matvec_scaling reads ~1.0 — noise, not a regression).
//
//   bench_infer            full sizes, report only
//   bench_infer --gate     full sizes, enforce the gates (exit 1 on miss)
//   bench_infer --quick    tiny sizes, no gates (CI smoke / sanitizers)
//   bench_infer --json P   also write the summary object to P
//   bench_infer --dtype D  fp32|fp16|bf16|int8|all quantized coverage
//                          (default all; fp32 = skip quantized runs)
//   bench_infer --draft-k K  speculative draft depth (default 4; 0 runs
//                          the identical walk one token at a time — CI
//                          loops this to re-pin identity at every depth)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "data/corpus.hpp"
#include "data/qa_bench.hpp"
#include "eval/metrics.hpp"
#include "eval/qa_runner.hpp"
#include "nn/infer.hpp"
#include "nn/spec_decode.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor_ops.hpp"
#include "text/tokenizer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace chipalign;

namespace {

// -- seed baseline: the pre-kernel InferenceSession, kept verbatim -----------
//
// Scalar double-accumulation matvec, eager O(layers * seq * kv_dim)
// zero-fill on construction, and fresh scratch vectors allocated inside
// every step() — exactly what the decode loop shipped with before this
// engine existed.

void seed_matvec(const Tensor& w, std::span<const float> x,
                 std::span<float> y) {
  const std::int64_t out_dim = w.dim(0);
  const std::int64_t in_dim = w.dim(1);
  for (std::int64_t o = 0; o < out_dim; ++o) {
    const float* w_row = w.data() + o * in_dim;
    double acc = 0.0;
    for (std::int64_t i = 0; i < in_dim; ++i) {
      acc += static_cast<double>(w_row[i]) * x[static_cast<std::size_t>(i)];
    }
    y[static_cast<std::size_t>(o)] = static_cast<float>(acc);
  }
}

void seed_rmsnorm_row(std::span<const float> x, std::span<const float> gain,
                      double eps, std::span<float> y) {
  double mean_sq = 0.0;
  for (float v : x) mean_sq += static_cast<double>(v) * v;
  mean_sq /= static_cast<double>(x.size());
  const auto r = static_cast<float>(1.0 / std::sqrt(mean_sq + eps));
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] * r * gain[i];
}

float seed_sigmoid(float x) { return 1.0F / (1.0F + std::exp(-x)); }

class SeedSession {
 public:
  explicit SeedSession(const TransformerModel& model) : model_(model) {
    const auto& config = model_.config();
    const std::size_t cache_floats = static_cast<std::size_t>(
        config.max_seq_len * config.n_kv_heads * config.head_dim());
    k_cache_.assign(static_cast<std::size_t>(config.n_layers),
                    std::vector<float>(cache_floats, 0.0F));
    v_cache_ = k_cache_;
  }

  std::vector<float> step(TokenId token) {
    const auto& config = model_.config();
    const std::int64_t d = config.d_model;
    const std::int64_t hd = config.head_dim();
    const std::int64_t n_heads = config.n_heads;
    const std::int64_t n_kv = config.n_kv_heads;
    const std::int64_t group = n_heads / n_kv;
    const std::int64_t kv_dim = n_kv * hd;
    const float scale = 1.0F / std::sqrt(static_cast<float>(hd));
    const std::int64_t pos = position_;

    std::vector<float> x(model_.embed().value.row(token).begin(),
                         model_.embed().value.row(token).end());
    std::vector<float> normed(static_cast<std::size_t>(d));
    std::vector<float> q(static_cast<std::size_t>(d));
    std::vector<float> att(static_cast<std::size_t>(d));
    std::vector<float> proj(static_cast<std::size_t>(d));
    std::vector<float> gate(static_cast<std::size_t>(config.d_ff));
    std::vector<float> up(static_cast<std::size_t>(config.d_ff));
    std::vector<float> scores(static_cast<std::size_t>(pos + 1));

    for (std::size_t layer = 0; layer < model_.blocks().size(); ++layer) {
      const TransformerBlock& block = model_.blocks()[layer];
      float* k_new = k_cache_[layer].data() + pos * kv_dim;
      float* v_new = v_cache_[layer].data() + pos * kv_dim;

      seed_rmsnorm_row(x, block.input_norm.value.values(), config.norm_eps,
                       normed);
      seed_matvec(block.q_proj.value, normed, q);
      seed_matvec(block.k_proj.value, normed,
                  std::span<float>(k_new, static_cast<std::size_t>(kv_dim)));
      seed_matvec(block.v_proj.value, normed,
                  std::span<float>(v_new, static_cast<std::size_t>(kv_dim)));

      for (std::int64_t h = 0; h < n_heads; ++h) {
        model_.rotary().apply(
            std::span<float>(q.data() + h * hd, static_cast<std::size_t>(hd)),
            pos);
      }
      for (std::int64_t h = 0; h < n_kv; ++h) {
        model_.rotary().apply(
            std::span<float>(k_new + h * hd, static_cast<std::size_t>(hd)),
            pos);
      }

      std::fill(att.begin(), att.end(), 0.0F);
      for (std::int64_t h = 0; h < n_heads; ++h) {
        const std::int64_t kvh = h / group;
        const float* q_h = q.data() + h * hd;
        for (std::int64_t j = 0; j <= pos; ++j) {
          const float* k_j = k_cache_[layer].data() + j * kv_dim + kvh * hd;
          double acc = 0.0;
          for (std::int64_t u = 0; u < hd; ++u) {
            acc += static_cast<double>(q_h[u]) * k_j[u];
          }
          scores[static_cast<std::size_t>(j)] =
              static_cast<float>(acc) * scale;
        }
        ops::softmax_inplace(std::span<float>(scores.data(),
                                              static_cast<std::size_t>(pos
                                                  + 1)));
        float* att_h = att.data() + h * hd;
        for (std::int64_t j = 0; j <= pos; ++j) {
          const float p = scores[static_cast<std::size_t>(j)];
          const float* v_j = v_cache_[layer].data() + j * kv_dim + kvh * hd;
          for (std::int64_t u = 0; u < hd; ++u) att_h[u] += p * v_j[u];
        }
      }

      seed_matvec(block.o_proj.value, att, proj);
      for (std::int64_t i = 0; i < d; ++i) {
        x[static_cast<std::size_t>(i)] += proj[static_cast<std::size_t>(i)];
      }

      seed_rmsnorm_row(x, block.post_norm.value.values(), config.norm_eps,
                       normed);
      seed_matvec(block.gate_proj.value, normed, gate);
      seed_matvec(block.up_proj.value, normed, up);
      for (std::size_t i = 0; i < gate.size(); ++i) {
        gate[i] = gate[i] * seed_sigmoid(gate[i]) * up[i];
      }
      seed_matvec(block.down_proj.value, gate, proj);
      for (std::int64_t i = 0; i < d; ++i) {
        x[static_cast<std::size_t>(i)] += proj[static_cast<std::size_t>(i)];
      }
    }

    seed_rmsnorm_row(x, model_.final_norm().value.values(), config.norm_eps,
                     normed);
    std::vector<float> logits(static_cast<std::size_t>(config.vocab_size));
    seed_matvec(model_.embed().value, normed, logits);
    ++position_;
    return logits;
  }

 private:
  const TransformerModel& model_;
  std::int64_t position_ = 0;
  std::vector<std::vector<float>> k_cache_;
  std::vector<std::vector<float>> v_cache_;
};

// -- seed MCQ baseline: re-prefill the shared context for every choice -------

CategoryScores seed_mcq_eval(const TransformerModel& model,
                             const std::vector<McqItem>& items) {
  const CharTokenizer& tok = tokenizer();
  std::map<std::string, double> sums;
  std::map<std::string, int> counts;
  double total = 0.0;
  for (const McqItem& item : items) {
    const std::string prompt = qa_prompt("", {}, item.question);
    const std::vector<TokenId> context = tok.encode(prompt, /*add_bos=*/true);
    double best_score = -1e300;
    int best_choice = -1;
    for (std::size_t c = 0; c < item.choices.size(); ++c) {
      const std::vector<TokenId> continuation = tok.encode(item.choices[c]);
      const double score = mean_logprob(model, context, continuation);
      if (score > best_score) {
        best_score = score;
        best_choice = static_cast<int>(c);
      }
    }
    const double s = best_choice == item.correct_index ? 1.0 : 0.0;
    sums[domain_name(item.domain)] += s;
    ++counts[domain_name(item.domain)];
    total += s;
  }
  CategoryScores out;
  for (const auto& [cat, sum] : sums) {
    out.by_category[cat] = sum / counts.at(cat);
    out.counts[cat] = counts.at(cat);
  }
  out.all = items.empty() ? 0.0 : total / static_cast<double>(items.size());
  return out;
}

// -- harness -----------------------------------------------------------------

struct Sizes {
  // Decode model: serving-shaped — projections dominate, weights stay
  // L3-resident on typical hosts (~46 MB), so the gate measures kernel
  // throughput rather than DRAM bandwidth.
  std::int64_t vocab = 4096;
  std::int64_t d_model = 512;
  std::int64_t n_layers = 4;
  std::int64_t n_heads = 8;
  std::int64_t n_kv_heads = 4;
  std::int64_t d_ff = 1024;
  std::int64_t prefill_tokens = 64;
  std::int64_t decode_tokens = 96;
  int reps = 3;
  // Logits-projection scaling shape.
  std::int64_t mv_out = 8192;
  std::int64_t mv_in = 1024;
  int mv_reps = 20;
  // MCQ set.
  int mcq_per_domain = 2;
  std::size_t question_pad = 280;  ///< shared-context length driver
};

Sizes quick_sizes() {
  Sizes s;
  s.vocab = 256;
  s.d_model = 32;
  s.n_layers = 2;
  s.n_heads = 4;
  s.n_kv_heads = 2;
  s.d_ff = 64;
  s.prefill_tokens = 8;
  s.decode_tokens = 8;
  // Quick reps are microsecond-scale: best-of-many is what makes the
  // trend-gated numbers reproducible on shared runners.
  s.reps = 25;
  s.mv_out = 512;
  s.mv_in = 128;
  s.mv_reps = 10;
  s.mcq_per_domain = 1;
  s.question_pad = 48;
  return s;
}

/// Best-of-reps wall time of fn() in seconds.
template <typename Fn>
double best_seconds(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

bool scores_equal(const CategoryScores& a, const CategoryScores& b) {
  return a.all == b.all && a.by_category == b.by_category &&
         a.counts == b.counts;
}

struct GateResult {
  std::string name;
  double value = 0.0;
  double floor = 0.0;
  bool skipped = false;
  std::string skip_reason;
  bool pass() const { return skipped || value >= floor; }
  /// "pass", "fail", or "skipped (<reason>)" — what the JSON summary's
  /// "gates" object records, and what the trend checker keys off so a
  /// skipped gate's raw value is never treated as a regression.
  std::string status() const {
    if (skipped) return "skipped (" + skip_reason + ")";
    return pass() ? "pass" : "fail";
  }
};

void print_gate(const GateResult& g) {
  if (g.skipped) {
    std::printf("{\"gate\":\"%s\",\"status\":\"skip\",\"reason\":\"%s\"}\n",
                g.name.c_str(), g.skip_reason.c_str());
  } else {
    std::printf(
        "{\"gate\":\"%s\",\"value\":%.2f,\"floor\":%.2f,\"status\":\"%s\"}\n",
        g.name.c_str(), g.value, g.floor, g.pass() ? "pass" : "fail");
  }
}

/// Writes the "gates" object into an open JSON summary (no trailing comma).
void write_gates_json(std::FILE* f, const std::vector<GateResult>& gates) {
  std::fprintf(f, "  \"gates\": {\n");
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const GateResult& g = gates[i];
    std::fprintf(f,
                 "    \"%s\": {\"value\": %.4f, \"floor\": %.4f, "
                 "\"status\": \"%s\"}%s\n",
                 g.name.c_str(), g.value, g.floor, g.status().c_str(),
                 i + 1 < gates.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
}

/// One quantized-dtype measurement round.
struct DtypeReport {
  std::string tag;          ///< "fp16" | "bf16" | "int8"
  double decode_tps = 0.0;
  bool deterministic = false;  ///< two greedy runs bit-identical
  double mcq_acc = 0.0;
  double rouge_vs_fp32 = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool gate = false;
  const char* json_path = nullptr;
  std::string dtype_arg = "all";
  long draft_k_arg = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--dtype") == 0 && i + 1 < argc) {
      dtype_arg = argv[++i];
    }
    if (std::strcmp(argv[i], "--draft-k") == 0 && i + 1 < argc) {
      draft_k_arg = std::atol(argv[++i]);
    }
  }
  if (draft_k_arg < 0) {
    std::fprintf(stderr, "bench_infer: --draft-k must be >= 0\n");
    return 2;
  }
  const Sizes sizes = quick ? quick_sizes() : Sizes{};

  // Quantized dtypes to measure (fp32 always runs as the baseline).
  std::vector<std::pair<std::string, DType>> qdtypes;
  const std::vector<std::pair<std::string, DType>> all_qdtypes = {
      {"fp16", DType::kF16}, {"bf16", DType::kBF16}, {"int8", DType::kI8}};
  if (dtype_arg == "all") {
    qdtypes = all_qdtypes;
  } else if (dtype_arg != "fp32") {
    bool known = false;
    for (const auto& [tag, dt] : all_qdtypes) {
      if (tag == dtype_arg) {
        qdtypes.emplace_back(tag, dt);
        known = true;
      }
    }
    if (!known) {
      std::fprintf(stderr,
                   "bench_infer: unknown --dtype '%s' "
                   "(use fp32|fp16|bf16|int8|all)\n",
                   dtype_arg.c_str());
      return 2;
    }
  }

  std::printf("{\"backend\":\"%s\",\"simd_available\":%s,\"cores\":%u}\n",
              kernels::backend_name(),
              kernels::simd_available() ? "true" : "false",
              std::thread::hardware_concurrency());

  // -- decode tokens/sec: engine vs seed session -----------------------------
  ModelConfig config;
  config.name = "bench-infer";
  config.vocab_size = sizes.vocab;
  config.d_model = sizes.d_model;
  config.n_layers = sizes.n_layers;
  config.n_heads = sizes.n_heads;
  config.n_kv_heads = sizes.n_kv_heads;
  config.d_ff = sizes.d_ff;
  config.max_seq_len = sizes.prefill_tokens + sizes.decode_tokens + 1;
  config.validate();
  Rng rng(0x1FE12ULL);
  const TransformerModel model(config, rng);

  std::vector<TokenId> prompt(static_cast<std::size_t>(sizes.prefill_tokens));
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    prompt[i] = static_cast<TokenId>((i * 37 + 11) %
                                     static_cast<std::size_t>(sizes.vocab));
  }

  const double prefill_s = best_seconds(sizes.reps, [&] {
    InferenceSession session(model);
    session.prefill(prompt);
  });
  const double prefill_tps =
      static_cast<double>(sizes.prefill_tokens) / prefill_s;

  // Greedy decode (argmax feedback) from the prefilled prompt.
  const double decode_s = best_seconds(sizes.reps, [&] {
    InferenceSession session(model);
    std::vector<float> logits = session.prefill(prompt);
    for (std::int64_t t = 0; t < sizes.decode_tokens; ++t) {
      const auto next = static_cast<TokenId>(
          ops::argmax(std::span<const float>(logits.data(), logits.size())));
      logits = session.step(next);
    }
  });
  const double decode_tps =
      static_cast<double>(sizes.decode_tokens) / decode_s;

  const double seed_decode_s = best_seconds(sizes.reps, [&] {
    SeedSession session(model);
    std::vector<float> logits;
    for (const TokenId t : prompt) logits = session.step(t);
    for (std::int64_t t = 0; t < sizes.decode_tokens; ++t) {
      const auto next = static_cast<TokenId>(
          ops::argmax(std::span<const float>(logits.data(), logits.size())));
      logits = session.step(next);
    }
  });
  const double seed_decode_tps =
      static_cast<double>(sizes.decode_tokens) / seed_decode_s;
  const double decode_speedup = decode_tps / seed_decode_tps;

  std::printf(
      "{\"bench\":\"decode\",\"prefill_tps\":%.1f,\"decode_tps\":%.1f,"
      "\"seed_decode_tps\":%.1f,\"speedup\":%.2f}\n",
      prefill_tps, decode_tps, seed_decode_tps, decode_speedup);

  // decode_speedup floor calibration. The decode loop is dominated by the
  // per-token weight matvecs, so the end-to-end speedup the engine can
  // reach on a host tracks the kernel-vs-seed matvec advantage there —
  // which varies with SIMD width, core count and cache sizes (a 1-core CI
  // runner measures well under a desktop's ratio on identical code).
  // Probe both matvecs on the logits shape [vocab, d_model] (the largest
  // per-token projection) and require the engine to keep >= 70% of the
  // probe's advantage end-to-end (attention + norms + RoPE dilute it),
  // capped at the original 3x claim so a fast host still enforces that.
  std::vector<float> probe_x(static_cast<std::size_t>(sizes.d_model));
  std::vector<float> probe_y(static_cast<std::size_t>(sizes.vocab));
  for (float& f : probe_x) f = static_cast<float>(rng.uniform(-1.0, 1.0));
  const double seed_probe_t = best_seconds(sizes.reps, [&] {
    seed_matvec(model.embed().value, probe_x, probe_y);
  });
  const double kernel_probe_t = best_seconds(sizes.reps, [&] {
    kernels::matvec(model.embed().value.data(), probe_x.data(),
                    probe_y.data(), sizes.vocab, sizes.d_model);
  });
  const double matvec_probe = seed_probe_t / kernel_probe_t;
  const double decode_floor = std::min(3.0, 0.7 * matvec_probe);
  std::printf(
      "{\"bench\":\"decode_floor_probe\",\"seed_ms\":%.3f,\"kernel_ms\":%.3f,"
      "\"matvec_probe\":%.2f,\"decode_floor\":%.2f}\n",
      seed_probe_t * 1e3, kernel_probe_t * 1e3, matvec_probe, decode_floor);

  // -- quantized decode: per-dtype tokens/sec + determinism ------------------
  // Each dtype gets a fresh copy of the same weights, quantized in place.
  // Two greedy runs must emit identical tokens AND identical final-logits
  // bits: quantized kernels dequantize exactly into the shared fp64
  // reduction, so any run-to-run wobble is a contract violation (fatal).
  const auto greedy_run = [&](const TransformerModel& m,
                              std::vector<TokenId>& toks_out,
                              std::vector<float>& logits_out) {
    InferenceSession session(m);
    std::vector<float> logits = session.prefill(prompt);
    toks_out.clear();
    for (std::int64_t t = 0; t < sizes.decode_tokens; ++t) {
      const auto next = static_cast<TokenId>(
          ops::argmax(std::span<const float>(logits.data(), logits.size())));
      toks_out.push_back(next);
      logits = session.step(next);
    }
    logits_out = logits;
  };

  std::vector<DtypeReport> dtype_reports;
  bool quant_deterministic = true;
  for (const auto& [tag, dt] : qdtypes) {
    TransformerModel qmodel =
        TransformerModel::from_checkpoint(model.to_checkpoint());
    qmodel.quantize_weights(dt);

    DtypeReport report;
    report.tag = tag;
    const double q_decode_s = best_seconds(sizes.reps, [&] {
      InferenceSession session(qmodel);
      std::vector<float> logits = session.prefill(prompt);
      for (std::int64_t t = 0; t < sizes.decode_tokens; ++t) {
        const auto next = static_cast<TokenId>(ops::argmax(
            std::span<const float>(logits.data(), logits.size())));
        logits = session.step(next);
      }
    });
    report.decode_tps = static_cast<double>(sizes.decode_tokens) / q_decode_s;

    std::vector<TokenId> toks_a, toks_b;
    std::vector<float> logits_a, logits_b;
    greedy_run(qmodel, toks_a, logits_a);
    greedy_run(qmodel, toks_b, logits_b);
    report.deterministic =
        toks_a == toks_b && logits_a.size() == logits_b.size() &&
        std::memcmp(logits_a.data(), logits_b.data(),
                    logits_a.size() * sizeof(float)) == 0;
    if (!report.deterministic) quant_deterministic = false;

    std::printf(
        "{\"bench\":\"decode_%s\",\"decode_tps\":%.1f,\"vs_fp32\":%.2f,"
        "\"deterministic\":%s}\n",
        tag.c_str(), report.decode_tps, report.decode_tps / decode_tps,
        report.deterministic ? "true" : "false");
    dtype_reports.push_back(std::move(report));
  }

  // -- logits-projection matvec thread scaling -------------------------------
  std::vector<float> w(static_cast<std::size_t>(sizes.mv_out * sizes.mv_in));
  std::vector<float> xv(static_cast<std::size_t>(sizes.mv_in));
  std::vector<float> y1(static_cast<std::size_t>(sizes.mv_out));
  std::vector<float> y4(static_cast<std::size_t>(sizes.mv_out));
  for (float& f : w) f = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (float& f : xv) f = static_cast<float>(rng.uniform(-1.0, 1.0));

  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const double mv_t1 = best_seconds(sizes.mv_reps, [&] {
    kernels::parallel_matvec(w.data(), xv.data(), y1.data(), sizes.mv_out,
                             sizes.mv_in, &pool1);
  });
  const double mv_t4 = best_seconds(sizes.mv_reps, [&] {
    kernels::parallel_matvec(w.data(), xv.data(), y4.data(), sizes.mv_out,
                             sizes.mv_in, &pool4);
  });
  const double mv_scaling = mv_t1 / mv_t4;
  const bool mv_bitwise =
      std::memcmp(y1.data(), y4.data(), y1.size() * sizeof(float)) == 0;
  std::printf(
      "{\"bench\":\"matvec_scaling\",\"rows\":%lld,\"cols\":%lld,"
      "\"t1_ms\":%.3f,\"t4_ms\":%.3f,\"scaling\":%.2f,\"bitwise\":%s}\n",
      static_cast<long long>(sizes.mv_out),
      static_cast<long long>(sizes.mv_in), mv_t1 * 1e3, mv_t4 * 1e3,
      mv_scaling, mv_bitwise ? "true" : "false");

  // -- int8 matvec vs fp32 on the same memory-bound shape --------------------
  // The logits projection streams the whole weight matrix per token; int8
  // moves 4x fewer weight bytes, which is where quantized decode speed
  // comes from. Same pool (the global one) on both sides.
  std::vector<std::int8_t> w_codes(w.size());
  std::vector<float> w_scales(static_cast<std::size_t>(sizes.mv_out));
  for (std::int64_t r = 0; r < sizes.mv_out; ++r) {
    const float* row = w.data() + r * sizes.mv_in;
    const float s = int8_row_scale(row, sizes.mv_in);
    w_scales[static_cast<std::size_t>(r)] = s;
    quantize_row_i8(row, sizes.mv_in, s,
                    w_codes.data() + r * sizes.mv_in);
  }
  std::vector<float> y_f32(static_cast<std::size_t>(sizes.mv_out));
  std::vector<float> y_i8(static_cast<std::size_t>(sizes.mv_out));
  const double mv_f32_t = best_seconds(sizes.mv_reps, [&] {
    kernels::parallel_matvec(w.data(), xv.data(), y_f32.data(), sizes.mv_out,
                             sizes.mv_in);
  });
  const double mv_i8_t = best_seconds(sizes.mv_reps, [&] {
    kernels::parallel_matvec_i8(w_codes.data(), w_scales.data(), xv.data(),
                                y_i8.data(), sizes.mv_out, sizes.mv_in);
  });
  const double int8_matvec_speedup = mv_f32_t / mv_i8_t;
  // int8's advantage is bandwidth: 4x fewer weight bytes per token. It can
  // only show when the fp32 matvec is pinned to the memory floor AND int8's
  // compute ceiling (the deterministic fp64-FMA contract plus dequant
  // conversion — identical per-element work on every backend) sits below
  // that floor. Measure the streaming-read floor over the same buffer; the
  // 1.5x gate applies only when the floor dominates int8's compute time,
  // otherwise the host is compute-bound and the ratio is meaningless (the
  // CI trend checker still tracks the absolute times against baselines).
  volatile float scan_sink = 0.0f;
  const double scan_t = best_seconds(sizes.mv_reps, [&] {
    float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    const float* p = w.data();
    const std::size_t n = w.size() & ~std::size_t{7};
    for (std::size_t i = 0; i < n; i += 8) {
      for (std::size_t l = 0; l < 8; ++l) acc[l] += p[i + l];
    }
    scan_sink = acc[0] + acc[1] + acc[2] + acc[3] + acc[4] + acc[5] +
                acc[6] + acc[7];
  });
  (void)scan_sink;
  const bool int8_mem_bound = scan_t >= 1.5 * mv_i8_t;
  std::printf(
      "{\"bench\":\"int8_matvec\",\"f32_ms\":%.3f,\"i8_ms\":%.3f,"
      "\"stream_ms\":%.3f,\"speedup\":%.2f,\"mem_bound\":%s}\n",
      mv_f32_t * 1e3, mv_i8_t * 1e3, scan_t * 1e3, int8_matvec_speedup,
      int8_mem_bound ? "true" : "false");

  // -- speculative decode: prompt-lookup drafting + multi-token verify -------
  // Copy-heavy workload: the prompt repeats a short token block, the way a
  // QA answer quotes its retrieved context, and greedy decode settles into
  // repeating patterns prompt-lookup predicts well. draft_k = 0 runs the
  // identical loop with one decode_step per token, so the comparison
  // isolates drafting + the batched verify path. Only the decode loop is
  // timed (prefill is common to both sides). Byte-identity of the emitted
  // tokens is fatal: greedy acceptance makes speculation a pure throughput
  // knob, never a quality one.
  const auto draft_k = static_cast<std::int64_t>(draft_k_arg);
  std::vector<TokenId> spec_prompt(
      static_cast<std::size_t>(sizes.prefill_tokens));
  for (std::size_t i = 0; i < spec_prompt.size(); ++i) {
    spec_prompt[i] = static_cast<TokenId>((i % 7) * 5 + 3);
  }
  const auto spec_run = [&](std::int64_t k, SpecDecodeStats* stats,
                            std::vector<TokenId>& toks) {
    InferenceSession session(model);
    std::vector<float> logits = session.prefill(spec_prompt);
    PromptLookupDrafter drafter(1, 3);
    Timer t;
    toks = speculative_decode_tokens(session, logits, spec_prompt, drafter,
                                     k, sizes.decode_tokens,
                                     /*stop_at_newline=*/false, stats);
    return t.seconds();
  };
  std::vector<TokenId> plain_toks;
  std::vector<TokenId> spec_toks;
  SpecDecodeStats spec_stats;
  double spec_plain_s = 1e300;
  double spec_s = 1e300;
  for (int r = 0; r < sizes.reps; ++r) {
    spec_plain_s = std::min(spec_plain_s, spec_run(0, nullptr, plain_toks));
  }
  for (int r = 0; r < sizes.reps; ++r) {
    SpecDecodeStats pass;
    spec_s = std::min(spec_s, spec_run(draft_k, &pass, spec_toks));
    spec_stats = pass;
  }
  const bool spec_identical = spec_toks == plain_toks;
  const double spec_plain_tps =
      static_cast<double>(plain_toks.size()) / spec_plain_s;
  const double spec_decode_tps =
      static_cast<double>(spec_toks.size()) / spec_s;
  const double spec_speedup =
      spec_plain_tps > 0.0 ? spec_decode_tps / spec_plain_tps : 0.0;

  // The verify win is one weight stream per K+1 rows instead of K+1
  // streams. Probe it directly: matmul_nt over [draft_k + 1, d_model] rows
  // against the logits matrix vs draft_k + 1 serial matvecs on the same
  // data. A host whose matvec is compute-bound (it streams weights faster
  // than it multiplies them) cannot reach 1.5x from batching alone, so the
  // gate skips there — the identity check above still ran and still binds.
  std::vector<float> probe_block(
      static_cast<std::size_t>((draft_k + 1) * sizes.d_model));
  std::vector<float> probe_out(
      static_cast<std::size_t>((draft_k + 1) * sizes.vocab));
  for (float& f : probe_block) {
    f = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const double spec_serial_t = best_seconds(sizes.reps, [&] {
    for (std::int64_t r = 0; r <= draft_k; ++r) {
      kernels::matvec(model.embed().value.data(),
                      probe_block.data() + r * sizes.d_model,
                      probe_out.data() + r * sizes.vocab, sizes.vocab,
                      sizes.d_model);
    }
  });
  const double spec_batched_t = best_seconds(sizes.reps, [&] {
    kernels::matmul_nt(probe_block.data(), model.embed().value.data(),
                       probe_out.data(), draft_k + 1, sizes.d_model,
                       sizes.vocab);
  });
  const double spec_probe = spec_serial_t / spec_batched_t;
  std::printf(
      "{\"bench\":\"spec_decode\",\"draft_k\":%lld,\"plain_tps\":%.1f,"
      "\"spec_tps\":%.1f,\"speedup\":%.2f,\"accept_len\":%.2f,"
      "\"draft_hit_rate\":%.2f,\"batched_probe\":%.2f,\"identical\":%s}\n",
      static_cast<long long>(draft_k), spec_plain_tps, spec_decode_tps,
      spec_speedup, spec_stats.accept_len_mean(),
      spec_stats.draft_hit_rate(), spec_probe,
      spec_identical ? "true" : "false");

  // -- MCQ: snapshot reuse vs re-prefill -------------------------------------
  ModelConfig mcq_config;
  mcq_config.name = "bench-mcq";
  mcq_config.vocab_size = tokenizer().vocab_size();
  mcq_config.d_model = quick ? 16 : 64;
  mcq_config.n_layers = 2;
  mcq_config.n_heads = 2;
  mcq_config.n_kv_heads = 1;
  mcq_config.d_ff = quick ? 24 : 128;
  mcq_config.max_seq_len = 1024;
  mcq_config.validate();
  Rng mcq_rng(0x3C0DAULL);
  const TransformerModel mcq_model(mcq_config, mcq_rng);

  const FactBase facts;
  std::vector<McqItem> items = build_mcq_eval(facts, 17, sizes.mcq_per_domain);
  // Pad questions so the shared prefill dominates — the regime the
  // prefix-cache reuse targets (long context, short choices).
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::string pad = "consider the flow context ";
    while (pad.size() < sizes.question_pad) pad += "and the timing report ";
    items[i].question = pad + items[i].question;
  }

  CategoryScores snapshot_scores;
  CategoryScores reprefill_scores;
  const double mcq_snapshot_s = best_seconds(sizes.reps, [&] {
    snapshot_scores = run_mcq_eval(mcq_model, items);
  });
  const double mcq_reprefill_s = best_seconds(sizes.reps, [&] {
    reprefill_scores = seed_mcq_eval(mcq_model, items);
  });
  const double mcq_speedup = mcq_reprefill_s / mcq_snapshot_s;
  const bool mcq_equal = scores_equal(snapshot_scores, reprefill_scores);
  const double mcq_items_per_s =
      static_cast<double>(items.size()) / mcq_snapshot_s;
  std::printf(
      "{\"bench\":\"mcq\",\"items\":%zu,\"snapshot_s\":%.3f,"
      "\"reprefill_s\":%.3f,\"speedup\":%.2f,\"items_per_s\":%.2f,"
      "\"scores_equal\":%s}\n",
      items.size(), mcq_snapshot_s, mcq_reprefill_s, mcq_speedup,
      mcq_items_per_s, mcq_equal ? "true" : "false");

  // -- per-dtype accuracy deltas vs fp32 -------------------------------------
  // Same MCQ set and a greedy generation, re-run with quantized weights.
  // Everything is bitwise-deterministic, so these are exact constants per
  // (sizes, dtype) — the gate floors below are pinned from measured values
  // with margin.
  GenerateOptions rouge_gen;
  rouge_gen.max_new_tokens = quick ? 16 : 64;
  const std::string rouge_prompt =
      qa_prompt("", {}, "summarize the timing state of the design");
  // The bench model is random-init, so its greedy output is arbitrary text
  // (often all whitespace) — word-level ROUGE would see zero tokens. Score
  // at character granularity instead: spell each generated byte as its own
  // token, making rouge_l a normalized LCS over characters. Identical
  // generations score 1.0; the gate asks "does the quantized model still
  // emit (mostly) the fp32 generation?".
  const auto spell_chars = [](const std::string& text) {
    std::string out;
    for (const unsigned char c : text) {
      out += 'c';
      out += std::to_string(static_cast<int>(c));
      out += ' ';
    }
    return out;
  };
  const std::string fp32_text =
      spell_chars(generate(mcq_model, rouge_prompt, rouge_gen));
  const double mcq_acc_fp32 = snapshot_scores.all;
  for (DtypeReport& report : dtype_reports) {
    DType dt = DType::kF16;
    for (const auto& [tag, d] : all_qdtypes) {
      if (tag == report.tag) dt = d;
    }
    TransformerModel q_mcq =
        TransformerModel::from_checkpoint(mcq_model.to_checkpoint());
    q_mcq.quantize_weights(dt);
    report.mcq_acc = run_mcq_eval(q_mcq, items).all;
    report.rouge_vs_fp32 = rouge_l(
        spell_chars(generate(q_mcq, rouge_prompt, rouge_gen)), fp32_text);
    std::printf(
        "{\"bench\":\"accuracy_%s\",\"mcq_acc\":%.4f,\"mcq_acc_fp32\":%.4f,"
        "\"rouge_vs_fp32\":%.4f}\n",
        report.tag.c_str(), report.mcq_acc, mcq_acc_fp32,
        report.rouge_vs_fp32);
  }

  // -- gates -----------------------------------------------------------------
  const bool avx2_live = kernels::simd_available() &&
                         std::strcmp(kernels::backend_name(), "avx2") == 0;
  std::vector<GateResult> gates;
  gates.push_back({"decode_speedup", decode_speedup, decode_floor, false, {}});
  if (!avx2_live) {
    gates.back().skipped = true;
    gates.back().skip_reason = "avx2 backend not active";
  } else if (matvec_probe < 1.5) {
    gates.back().skipped = true;
    gates.back().skip_reason = "kernel matvec advantage below 1.5x";
  }
  gates.push_back({"spec_decode_speedup", spec_speedup, 1.5, false, {}});
  if (spec_stats.accept_len_mean() < 2.0) {
    gates.back().skipped = true;
    gates.back().skip_reason = "low acceptance";
  } else if (spec_probe < 1.5) {
    gates.back().skipped = true;
    gates.back().skip_reason = "host compute-bound";
  }
  gates.push_back({"matvec_scaling", mv_scaling, 2.0, false, {}});
  if (std::thread::hardware_concurrency() < 4) {
    gates.back().skipped = true;
    gates.back().skip_reason =
        std::thread::hardware_concurrency() <= 1 ? "1 core" : "<4 cores";
  }
  gates.push_back({"mcq_speedup", mcq_speedup, 2.0, false, {}});
  gates.push_back(
      {"int8_matvec_speedup", int8_matvec_speedup, 1.5, false, {}});
  if (!avx2_live) {
    gates.back().skipped = true;
    gates.back().skip_reason = "avx2 backend not active";
  } else if (dtype_arg != "all" && dtype_arg != "int8") {
    gates.back().skipped = true;
    gates.back().skip_reason = "int8 not selected";
  } else if (!int8_mem_bound) {
    gates.back().skipped = true;
    gates.back().skip_reason = "host compute-bound";
  }
  for (const DtypeReport& report : dtype_reports) {
    // Quantized answers must stay close to fp32: MCQ accuracy within 0.25
    // of fp32's, and the greedy generation overlapping fp32's (char-level
    // ROUGE-L). Both are exact deterministic constants per (sizes, dtype)
    // — measured 1.0000 ROUGE for all three dtypes at full sizes — so the
    // floors carry real margin, not hope.
    gates.push_back({"mcq_acc_" + report.tag, report.mcq_acc,
                     mcq_acc_fp32 - 0.25, false, {}});
    gates.push_back(
        {"rouge_" + report.tag, report.rouge_vs_fp32, 0.90, false, {}});
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_infer: cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"backend\": \"%s\",\n"
        "  \"quick\": %s,\n"
        "  \"prefill_tps\": %.1f,\n"
        "  \"decode_tps\": %.1f,\n"
        "  \"seed_decode_tps\": %.1f,\n"
        "  \"decode_speedup\": %.3f,\n"
        "  \"matvec_probe\": %.3f,\n"
        "  \"spec_plain_tps\": %.1f,\n"
        "  \"spec_decode_tps\": %.1f,\n"
        "  \"spec_decode_speedup\": %.3f,\n"
        "  \"spec_accept_len\": %.4f,\n"
        "  \"spec_draft_hit_rate\": %.4f,\n"
        "  \"spec_identical\": %s,\n"
        "  \"matvec_t1_ms\": %.3f,\n"
        "  \"matvec_t4_ms\": %.3f,\n"
        "  \"matvec_scaling\": %.3f,\n"
        "  \"int8_matvec_speedup\": %.3f,\n"
        "  \"mcq_snapshot_s\": %.3f,\n"
        "  \"mcq_reprefill_s\": %.3f,\n"
        "  \"mcq_speedup\": %.3f,\n"
        "  \"mcq_items_per_s\": %.2f,\n"
        "  \"mcq_scores_equal\": %s,\n"
        "  \"mcq_acc_fp32\": %.4f,\n",
        kernels::backend_name(), quick ? "true" : "false", prefill_tps,
        decode_tps, seed_decode_tps, decode_speedup, matvec_probe,
        spec_plain_tps, spec_decode_tps, spec_speedup,
        spec_stats.accept_len_mean(), spec_stats.draft_hit_rate(),
        spec_identical ? "true" : "false", mv_t1 * 1e3, mv_t4 * 1e3,
        mv_scaling, int8_matvec_speedup, mcq_snapshot_s, mcq_reprefill_s,
        mcq_speedup, mcq_items_per_s, mcq_equal ? "true" : "false",
        mcq_acc_fp32);
    for (const DtypeReport& report : dtype_reports) {
      std::fprintf(f,
                   "  \"decode_tps_%s\": %.1f,\n"
                   "  \"deterministic_%s\": %s,\n"
                   "  \"mcq_acc_%s\": %.4f,\n"
                   "  \"rouge_%s\": %.4f,\n",
                   report.tag.c_str(), report.decode_tps, report.tag.c_str(),
                   report.deterministic ? "true" : "false",
                   report.tag.c_str(), report.mcq_acc, report.tag.c_str(),
                   report.rouge_vs_fp32);
    }
    write_gates_json(f, gates);
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  // Correctness failures are fatal in every mode; a perf engine that
  // changes scores or bits is broken, not slow.
  if (!mcq_equal) {
    std::fprintf(stderr,
                 "bench_infer: FAILED (snapshot MCQ scores != re-prefill)\n");
    return 1;
  }
  if (!mv_bitwise) {
    std::fprintf(stderr,
                 "bench_infer: FAILED (parallel_matvec bits differ 1 vs 4 "
                 "threads)\n");
    return 1;
  }
  if (!quant_deterministic) {
    std::fprintf(stderr,
                 "bench_infer: FAILED (quantized decode not bitwise "
                 "run-to-run deterministic)\n");
    return 1;
  }
  if (!spec_identical) {
    std::fprintf(stderr,
                 "bench_infer: FAILED (speculative greedy tokens differ "
                 "from plain greedy decode)\n");
    return 1;
  }

  if (gate) {
    bool ok = true;
    for (const GateResult& g : gates) {
      print_gate(g);
      if (!g.pass()) {
        std::fprintf(stderr, "GATE MISS: %s %.2f < required %.2f\n",
                     g.name.c_str(), g.value, g.floor);
        ok = false;
      }
    }
    if (!ok) {
      std::fprintf(stderr, "bench_infer: FAILED (speedup gate)\n");
      return 1;
    }
    std::printf("{\"gate\":\"pass\"}\n");
  }
  return 0;
}
