// Table 2 reproduction: rubric-graded scores on the industrial-style chip QA
// benchmark (single-turn and multi-turn), LLaMA2-70B-analog family.
//
// Rows: Chat (instruct), ChipNeMo (chip), ChipAlign (merged, lambda=0.6).
// Shape to check: ChipAlign >= both source models on "All" in both settings;
// Chat trails ChipNeMo on domain-heavy questions.

#include <cstdio>
#include <string>
#include <vector>

#include "core/backbones.hpp"
#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"
#include "eval/qa_runner.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace chipalign {
namespace {

const std::vector<std::string> kDomains = {"ARCH", "BUILD", "LSF", "TESTGEN"};

std::vector<std::string> cells_for(const CategoryScores& scores) {
  std::vector<std::string> cells;
  for (const std::string& domain : kDomains) {
    const auto it = scores.by_category.find(domain);
    cells.push_back(TablePrinter::fmt(
        it != scores.by_category.end() ? it->second : 0.0, 2));
  }
  cells.push_back(TablePrinter::fmt(scores.all, 2));
  return cells;
}

}  // namespace
}  // namespace chipalign

int main() {
  using namespace chipalign;
  set_log_level(LogLevel::kInfo);
  std::printf(
      "== ChipAlign reproduction: Table 2 (industrial chip QA, GPT-4-style "
      "rubric grades) ==\n\n");
  Timer timer;

  ModelZoo zoo;
  const EvalSuite suite = build_eval_suite(zoo.facts());
  const BackboneSpec spec = industrial_backbone();

  const Checkpoint base = zoo.base(spec);
  const Checkpoint chat = zoo.instruct(spec);
  const Checkpoint chipnemo = zoo.chip(spec);
  const Checkpoint chipalign = run_merge("chipalign", chipnemo, chat, base,
                                         0.6);

  struct Row {
    std::string label;
    const Checkpoint* checkpoint;
  };
  const std::vector<Row> rows = {
      {"LLaMA2-70B*-Chat", &chat},
      {"LLaMA2-70B*-ChipNeMo", &chipnemo},
      {"LLaMA2-70B*-ChipAlign", &chipalign},
  };

  TablePrinter table({"Method", "S:ARCH", "S:BUILD", "S:LSF", "S:TESTGEN",
                      "S:All", "M:ARCH", "M:BUILD", "M:LSF", "M:TESTGEN",
                      "M:All"});
  for (const Row& row : rows) {
    TransformerModel model = TransformerModel::from_checkpoint(*row.checkpoint);
    const CategoryScores single = run_industrial_eval(
        model, suite.industrial, *suite.rag, /*multi_turn=*/false);
    const CategoryScores multi = run_industrial_eval(
        model, suite.industrial, *suite.rag, /*multi_turn=*/true);
    std::vector<std::string> cells = {row.label};
    for (const std::string& cell : cells_for(single)) cells.push_back(cell);
    for (const std::string& cell : cells_for(multi)) cells.push_back(cell);
    table.add_row(std::move(cells));
  }
  table.print();

  std::printf("\n(S: single-turn, M: multi-turn; total %.1f s)\n",
              timer.seconds());
  return 0;
}
