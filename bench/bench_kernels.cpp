// bench_kernels — tensor-kernel layer vs the pre-kernel scalar baselines.
//
// Each case times a faithful in-TU copy of the seed implementation (the
// scalar loops tensor_ops.cpp shipped with before the kernel layer existed,
// compiled with the same default flags) against the dispatched kernel, and
// cross-checks the kernel result bit-for-bit against kernels::ref on the
// same buffers. One JSON line per case goes to stdout, so the numbers are
// machine-readable for CI trending.
//
//   bench_kernels           full sizes, report only
//   bench_kernels --gate    full sizes, enforce the speedup floors (exit 1
//                           on miss) — the acceptance mode run_benches.sh uses
//   bench_kernels --quick   tiny sizes, no gate; exercises the same code
//                           paths cheaply (CI smoke / sanitizer builds)
//
// Gate floors: dot, matmul_nt and the fused scaled_sum (vs the seed's
// scale+scale+add composition) must be >= 3x; axpy must be >= 1.15x. axpy
// at 16M elements is DRAM-bandwidth-bound — it streams 2 reads + 1 write
// with a single multiply-add per element, so no amount of vectorization can
// reach 3x once the scalar loop already saturates memory; see
// DESIGN.md ("Roofline note").

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/kernels/kernels.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace chipalign;

namespace {

// -- seed baselines (verbatim from the pre-kernel tensor_ops.cpp) ------------

double seed_dot(const float* a, const float* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

void seed_axpy(float alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void seed_scale(float* x, float alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

/// The seed SLERP combine: out = a*x + b*y composed from the seed's
/// tensor-level ops, ops::add(ops::scaled(x, a), ops::scaled(y, b)). Each
/// scaled() copies its input tensor and scales in place, and add() copies
/// its left operand before the axpy — three full-size allocating copies plus
/// three arithmetic passes, which is exactly what every merger paid per
/// tensor before the fused kernel.
void seed_composed_scaled_sum(float a, const float* x, float b, const float* y,
                              float* out, std::size_t n) {
  std::vector<float> t1(x, x + n);  // ops::scaled(x, a)
  seed_scale(t1.data(), a, n);
  std::vector<float> t2(y, y + n);  // ops::scaled(y, b)
  seed_scale(t2.data(), b, n);
  std::memcpy(out, t1.data(), n * sizeof(float));  // ops::add copies its lhs
  seed_axpy(1.0F, t2.data(), out, n);
}

void seed_matmul_nt(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a_row[kk]) * static_cast<double>(b_row[kk]);
      }
      c_row[j] = static_cast<float>(acc);
    }
  }
}

// -- harness -----------------------------------------------------------------

struct Sizes {
  std::size_t vec = std::size_t{1} << 24;  // 16.7M elements
  std::int64_t nt_m = 8192;
  std::int64_t nt_k = 2048;
  std::int64_t nt_n = 64;
  int vec_reps = 5;
  int mat_reps = 3;
};

Sizes quick_sizes() {
  Sizes s;
  s.vec = std::size_t{1} << 16;
  s.nt_m = 64;
  s.nt_k = 96;
  s.nt_n = 17;
  s.vec_reps = 2;
  s.mat_reps = 1;
  return s;
}

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Best-of-reps wall time of fn() in milliseconds.
template <typename Fn>
double best_ms(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.milliseconds());
  }
  return best;
}

bool g_all_exact = true;

void check_exact(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr,
                 "BIT-EXACTNESS FAILURE: %s diverges from kernels::ref\n",
                 what);
    g_all_exact = false;
  }
}

struct CaseResult {
  std::string name;
  double seed_ms = 0.0;
  double kernel_ms = 0.0;
  double speedup() const { return kernel_ms > 0.0 ? seed_ms / kernel_ms : 0.0; }
};

void print_case(const CaseResult& r, std::size_t elems) {
  std::printf(
      "{\"bench\":\"%s\",\"elements\":%zu,\"backend\":\"%s\",\"seed_ms\":%.3f,"
      "\"kernel_ms\":%.3f,\"speedup\":%.2f}\n",
      r.name.c_str(), elems, kernels::backend_name(), r.seed_ms, r.kernel_ms,
      r.speedup());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }
  const Sizes sizes = quick ? quick_sizes() : Sizes{};

  Rng rng(0xBE7C4ULL);
  const std::vector<float> x = random_vec(sizes.vec, rng);
  const std::vector<float> y = random_vec(sizes.vec, rng);
  std::vector<float> work(sizes.vec);
  std::vector<float> work2(sizes.vec);

  std::printf("{\"backend\":\"%s\",\"simd_available\":%s}\n",
              kernels::backend_name(), kernels::simd_available() ? "true"
                  : "false");

  // dot ----------------------------------------------------------------------
  CaseResult dot_case{"dot"};
  double seed_val = 0.0;
  double kernel_val = 0.0;
  dot_case.seed_ms = best_ms(sizes.vec_reps, [&] {
    seed_val = seed_dot(x.data(), y.data(), sizes.vec);
  });
  dot_case.kernel_ms = best_ms(sizes.vec_reps, [&] {
    kernel_val = kernels::dot(x.data(), y.data(), sizes.vec);
  });
  check_exact(kernel_val == kernels::ref::dot(x.data(), y.data(), sizes.vec),
              "dot");
  // The seed value differs only by summation order; sanity-check closeness.
  check_exact(std::abs(kernel_val - seed_val) <
                  1e-6 * (1.0 + std::abs(seed_val)),
              "dot vs seed (tolerance)");
  print_case(dot_case, sizes.vec);

  // norm ---------------------------------------------------------------------
  CaseResult norm_case{"norm"};
  norm_case.seed_ms = best_ms(sizes.vec_reps, [&] {
    seed_val = std::sqrt(seed_dot(x.data(), x.data(), sizes.vec));
  });
  norm_case.kernel_ms = best_ms(sizes.vec_reps, [&] {
    kernel_val = kernels::norm(x.data(), sizes.vec);
  });
  check_exact(kernel_val == kernels::ref::norm(x.data(), sizes.vec), "norm");
  print_case(norm_case, sizes.vec);

  // axpy ---------------------------------------------------------------------
  CaseResult axpy_case{"axpy"};
  axpy_case.seed_ms = best_ms(sizes.vec_reps, [&] {
    std::memcpy(work.data(), y.data(), sizes.vec * sizeof(float));
    seed_axpy(0.75F, x.data(), work.data(), sizes.vec);
  });
  axpy_case.kernel_ms = best_ms(sizes.vec_reps, [&] {
    std::memcpy(work2.data(), y.data(), sizes.vec * sizeof(float));
    kernels::axpy(0.75F, x.data(), work2.data(), sizes.vec);
  });
  std::memcpy(work.data(), y.data(), sizes.vec * sizeof(float));
  kernels::ref::axpy(0.75F, x.data(), work.data(), sizes.vec);
  check_exact(std::memcmp(work.data(), work2.data(),
                          sizes.vec * sizeof(float)) == 0,
              "axpy");
  print_case(axpy_case, sizes.vec);

  // fused scaled_sum vs composed seed path -----------------------------------
  CaseResult fused_case{"scaled_sum_fused_vs_composed"};
  fused_case.seed_ms = best_ms(sizes.vec_reps, [&] {
    seed_composed_scaled_sum(0.6F, x.data(), 0.4F, y.data(), work.data(),
                             sizes.vec);
  });
  fused_case.kernel_ms = best_ms(sizes.vec_reps, [&] {
    kernels::scaled_sum(0.6F, x.data(), 0.4F, y.data(), work2.data(),
                        sizes.vec);
  });
  kernels::ref::scaled_sum(0.6F, x.data(), 0.4F, y.data(), work.data(),
                           sizes.vec);
  check_exact(std::memcmp(work.data(), work2.data(),
                          sizes.vec * sizeof(float)) == 0,
              "scaled_sum");
  print_case(fused_case, sizes.vec);

  // matmul_nt (linear-layer shape: activations [m,k] x weights [n,k]) --------
  const std::size_t nt_a = static_cast<std::size_t>(sizes.nt_m * sizes.nt_k);
  const std::size_t nt_b = static_cast<std::size_t>(sizes.nt_n * sizes.nt_k);
  const std::size_t nt_c = static_cast<std::size_t>(sizes.nt_m * sizes.nt_n);
  const std::vector<float> ma = random_vec(nt_a, rng);
  const std::vector<float> mb = random_vec(nt_b, rng);
  std::vector<float> mc_seed(nt_c);
  std::vector<float> mc_kernel(nt_c);
  std::vector<float> mc_ref(nt_c);

  CaseResult nt_case{"matmul_nt"};
  nt_case.seed_ms = best_ms(sizes.mat_reps, [&] {
    seed_matmul_nt(ma.data(), mb.data(), mc_seed.data(), sizes.nt_m,
                   sizes.nt_k, sizes.nt_n);
  });
  nt_case.kernel_ms = best_ms(sizes.mat_reps, [&] {
    kernels::matmul_nt(ma.data(), mb.data(), mc_kernel.data(), sizes.nt_m,
                       sizes.nt_k, sizes.nt_n);
  });
  kernels::ref::matmul_nt(ma.data(), mb.data(), mc_ref.data(), sizes.nt_m,
                          sizes.nt_k, sizes.nt_n);
  check_exact(std::memcmp(mc_kernel.data(), mc_ref.data(),
                          nt_c * sizeof(float)) == 0,
              "matmul_nt");
  print_case(nt_case, nt_a);

  if (!g_all_exact) {
    std::fprintf(stderr, "bench_kernels: FAILED (bit-exactness)\n");
    return 1;
  }
  if (gate) {
    // Floors calibrated to what the algorithms allow on AVX2 hardware; see
    // the file comment for why axpy's floor is near 1x.
    struct Floor {
      const CaseResult* result;
      double min_speedup;
    };
    const Floor floors[] = {
        {&dot_case, 3.0},
        {&fused_case, 3.0},
        {&nt_case, 3.0},
        {&axpy_case, 1.15},
    };
    bool ok = true;
    for (const Floor& f : floors) {
      if (f.result->speedup() < f.min_speedup) {
        std::fprintf(stderr, "GATE MISS: %s speedup %.2fx < required %.2fx\n",
                     f.result->name.c_str(), f.result->speedup(),
                     f.min_speedup);
        ok = false;
      }
    }
    if (!ok) {
      std::fprintf(stderr, "bench_kernels: FAILED (speedup gate)\n");
      return 1;
    }
    std::printf("{\"gate\":\"pass\"}\n");
  }
  return 0;
}
